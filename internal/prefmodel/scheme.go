package prefmodel

import (
	"comparesets/internal/linalg"
	"comparesets/internal/model"
	"comparesets/internal/opinion"
)

// Scheme adapts a trained preference model into an opinion-vector
// definition (the "learned aspect-level preference vectors" alternative of
// §4.2.3): each review contributes its reviewer's learned attention on the
// aspects it mentions, scaled to [0, 1], and π(S) averages the
// contributions. Aspects never mentioned in S stay at 0.
type Scheme struct {
	Model *Model
}

// Name implements opinion.Scheme.
func (Scheme) Name() string { return "efm-learned" }

// Dim implements opinion.Scheme: one learned score per aspect.
func (Scheme) Dim(z int) int { return z }

// Column implements opinion.Scheme.
func (s Scheme) Column(r *model.Review, z int) linalg.Vector {
	col := linalg.NewVector(z)
	for _, a := range r.AspectSet() {
		col[a] = s.scoreFor(r, a)
	}
	return col
}

// Vector implements opinion.Scheme: the mean per-review learned score over
// the reviews of S that mention each aspect.
func (s Scheme) Vector(reviews []*model.Review, z int) linalg.Vector {
	sum := linalg.NewVector(z)
	count := linalg.NewVector(z)
	for _, r := range reviews {
		for _, a := range r.AspectSet() {
			sum[a] += s.scoreFor(r, a)
			count[a]++
		}
	}
	for a := range sum {
		if count[a] > 0 {
			sum[a] /= count[a]
		}
	}
	return sum
}

// scoreFor blends the reviewer's learned attention with the item's learned
// quality on aspect a, normalized from [1, MaxScore] to (0, 1].
func (s Scheme) scoreFor(r *model.Review, a int) float64 {
	var total, n float64
	if v, err := s.Model.PredictUserAspect(r.Reviewer, a); err == nil {
		total += v
		n++
	}
	if v, err := s.Model.PredictItemAspect(r.ItemID, a); err == nil {
		total += v
		n++
	}
	if n == 0 {
		return 0.5 // unknown reviewer and item: neutral prior
	}
	return (total / n) / MaxScore
}

// Interface conformance check.
var _ opinion.Scheme = Scheme{}
