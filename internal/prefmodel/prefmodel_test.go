package prefmodel

import (
	"errors"
	"testing"

	"comparesets/internal/core"
	"comparesets/internal/datagen"
	"comparesets/internal/dataset"
	"comparesets/internal/lexicon"
	"comparesets/internal/model"
)

func trainedModel(t *testing.T) (*Model, *model.Corpus) {
	t.Helper()
	c, err := datagen.Generate(datagen.Config{
		Category: lexicon.Cellphone, Products: 30, Reviewers: 40,
		MeanReviews: 10, MeanAlsoBought: 5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(c, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

func TestTrainFitsObservations(t *testing.T) {
	m, _ := trainedModel(t)
	xr, yr := m.FitRMSE()
	// Scores live in [1, 5]; a fit much worse than ~1.2 RMSE means ALS is
	// not learning anything.
	if xr > 1.2 || yr > 1.2 {
		t.Errorf("RMSE x=%v y=%v too high", xr, yr)
	}
	if xr <= 0 || yr <= 0 {
		t.Errorf("degenerate RMSE x=%v y=%v", xr, yr)
	}
}

func TestTrainImprovesOverInit(t *testing.T) {
	c, err := datagen.Generate(datagen.Config{
		Category: lexicon.Toy, Products: 20, Reviewers: 30,
		MeanReviews: 8, MeanAlsoBought: 4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	early, err := Train(c, Config{Iterations: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	late, err := Train(c, Config{Iterations: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ex, ey := early.FitRMSE()
	lx, ly := late.FitRMSE()
	if lx > ex+1e-9 || ly > ey+1e-9 {
		t.Errorf("more ALS iterations worsened fit: x %v→%v, y %v→%v", ex, lx, ey, ly)
	}
}

func TestPredictBoundsAndErrors(t *testing.T) {
	m, c := trainedModel(t)
	id := c.ItemIDs()[0]
	for a := 0; a < c.Aspects.Len(); a++ {
		s, err := m.PredictItemAspect(id, a)
		if err != nil {
			t.Fatal(err)
		}
		if s < 1 || s > MaxScore {
			t.Errorf("score %v out of [1,%v]", s, MaxScore)
		}
	}
	if _, err := m.PredictItemAspect("nope", 0); err == nil {
		t.Error("unknown item accepted")
	}
	if _, err := m.PredictItemAspect(id, 999); err == nil {
		t.Error("bad aspect accepted")
	}
	if _, err := m.PredictUserAspect("nope", 0); err == nil {
		t.Error("unknown user accepted")
	}
}

func TestPredictTracksSentiment(t *testing.T) {
	// An item whose reviews praise aspect A and pan aspect B should score
	// higher on A. Use a hand-built corpus for a clean signal.
	voc := model.NewVocabulary([]string{"battery", "screen"})
	c := model.NewCorpus("Test", voc)
	it := &model.Item{ID: "p1"}
	for i := 0; i < 12; i++ {
		it.Reviews = append(it.Reviews, &model.Review{
			ID: idStr("r", i), ItemID: "p1", Reviewer: idStr("u", i%4),
			Mentions: []model.Mention{
				{Aspect: 0, Polarity: model.Positive, Score: 2},
				{Aspect: 1, Polarity: model.Negative, Score: -2},
			},
		})
	}
	c.AddItem(it)
	m, err := Train(c, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	good, _ := m.PredictItemAspect("p1", 0)
	bad, _ := m.PredictItemAspect("p1", 1)
	if good <= bad {
		t.Errorf("praised aspect %v ≤ panned aspect %v", good, bad)
	}
}

func idStr(p string, i int) string { return p + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestTopAspects(t *testing.T) {
	m, c := trainedModel(t)
	id := c.ItemIDs()[0]
	top, err := m.TopAspects(id, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	s0, _ := m.PredictItemAspect(id, top[0])
	s2, _ := m.PredictItemAspect(id, top[2])
	if s0 < s2 {
		t.Errorf("top aspects not descending: %v < %v", s0, s2)
	}
	if _, err := m.TopAspects("nope", 2); err == nil {
		t.Error("unknown item accepted")
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	c := model.NewCorpus("Empty", model.NewVocabulary([]string{"a"}))
	if _, err := Train(c, Config{}); !errors.Is(err, ErrEmptyCorpus) {
		t.Errorf("err = %v", err)
	}
}

func TestTrainDeterministic(t *testing.T) {
	_, c := trainedModel(t)
	a, err := Train(c, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(c, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	id := c.ItemIDs()[3]
	va, _ := a.PredictItemAspect(id, 2)
	vb, _ := b.PredictItemAspect(id, 2)
	if va != vb {
		t.Errorf("nondeterministic training: %v vs %v", va, vb)
	}
}

func TestSchemeDrivesSelection(t *testing.T) {
	// The learned scheme must plug into the full selection pipeline.
	m, c := trainedModel(t)
	targets := dataset.TargetIDs(c)
	if len(targets) == 0 {
		t.Skip("no targets")
	}
	inst, err := c.NewInstance(targets[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{M: 3, Lambda: 1, Mu: 0.1, Scheme: Scheme{Model: m}}
	sel, err := core.CompaReSetSPlus{}.Select(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Indices) != inst.NumItems() {
		t.Fatalf("indices = %d sets", len(sel.Indices))
	}
	for i, idx := range sel.Indices {
		if len(idx) > 3 {
			t.Errorf("item %d selected %d reviews", i, len(idx))
		}
	}
}

func TestSchemeVectorBounds(t *testing.T) {
	m, c := trainedModel(t)
	s := Scheme{Model: m}
	z := c.Aspects.Len()
	for _, id := range c.ItemIDs()[:5] {
		it := c.Items[id]
		v := s.Vector(it.Reviews, z)
		for a, x := range v {
			if x < 0 || x > 1+1e-9 {
				t.Errorf("item %s aspect %d: %v out of [0,1]", id, a, x)
			}
		}
		for _, r := range it.Reviews {
			col := s.Column(r, z)
			for _, x := range col {
				if x < 0 || x > 1+1e-9 {
					t.Errorf("column value %v out of [0,1]", x)
				}
			}
		}
	}
}

func TestSchemeUnknownReviewerNeutral(t *testing.T) {
	m, _ := trainedModel(t)
	s := Scheme{Model: m}
	r := &model.Review{ID: "x", ItemID: "ghost", Reviewer: "ghost",
		Mentions: []model.Mention{{Aspect: 0, Polarity: model.Positive}}}
	col := s.Column(r, 3)
	if col[0] != 0.5 {
		t.Errorf("unknown reviewer/item score = %v, want 0.5 prior", col[0])
	}
}
