// Package prefmodel implements the paper's §4.2.3 extension: opinion
// vectors built from learned aspect-level preference scores rather than
// from raw mention counts. It follows the Explicit Factor Model (EFM,
// Zhang et al., SIGIR 2014) construction the paper cites:
//
//   - a user–aspect attention matrix X, where X[u][a] grows with how often
//     user u mentions aspect a, rescaled into [1, R];
//   - an item–aspect quality matrix Y, where Y[i][a] reflects the
//     aggregated sentiment of item i's reviews on aspect a, rescaled into
//     [1, R];
//   - a joint factorization X ≈ U·Vᵀ, Y ≈ W·Vᵀ with shared aspect factors
//     V, fit by ridge-regularized alternating least squares,
//
// which yields dense predicted preference scores even for (user, aspect)
// and (item, aspect) pairs never observed. The Scheme adapter plugs the
// learned item–aspect scores into the selection pipeline as an
// opinion-vector definition.
package prefmodel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"comparesets/internal/linalg"
	"comparesets/internal/model"
)

// MaxScore is R, the upper end of the EFM score scale (5, like star
// ratings).
const MaxScore = 5.0

// Config parameterizes training.
type Config struct {
	// Factors is the latent dimensionality (default 8).
	Factors int
	// Reg is the ridge regularizer of the ALS updates (default 0.1).
	Reg float64
	// Iterations is the number of ALS sweeps (default 15).
	Iterations int
	// Seed initializes the factors.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Factors == 0 {
		c.Factors = 8
	}
	if c.Reg == 0 {
		c.Reg = 0.1
	}
	if c.Iterations == 0 {
		c.Iterations = 15
	}
	return c
}

// Model is a trained aspect-preference model.
type Model struct {
	cfg     Config
	users   map[string]int
	items   map[string]int
	z       int
	userF   []linalg.Vector // U rows
	itemF   []linalg.Vector // W rows
	aspectF []linalg.Vector // V rows

	// observed ground matrices (sparse as maps) retained for evaluation.
	x map[[2]int]float64 // (user, aspect) -> attention
	y map[[2]int]float64 // (item, aspect) -> quality
}

// ErrEmptyCorpus is returned when the corpus holds no annotated reviews.
var ErrEmptyCorpus = errors.New("prefmodel: corpus has no annotated reviews")

// Train fits the model on a corpus.
func Train(c *model.Corpus, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	m := &Model{
		cfg:   cfg,
		users: map[string]int{},
		items: map[string]int{},
		z:     c.Aspects.Len(),
		x:     map[[2]int]float64{},
		y:     map[[2]int]float64{},
	}

	// Raw counts and sentiment sums.
	userFreq := map[[2]int]float64{}
	itemSent := map[[2]int]float64{}
	for _, id := range c.ItemIDs() {
		it := c.Items[id]
		ii := m.itemIndex(it.ID)
		for _, r := range it.Reviews {
			ui := m.userIndex(r.Reviewer)
			for _, men := range r.Mentions {
				userFreq[[2]int{ui, men.Aspect}]++
				itemSent[[2]int{ii, men.Aspect}] += men.Score
			}
		}
	}
	if len(userFreq) == 0 {
		return nil, ErrEmptyCorpus
	}
	// EFM rescaling: X = 1 + (R−1)·(2/(1+e^{−t}) − 1) for frequency t;
	// Y = 1 + (R−1)/(1+e^{−s}) for sentiment sum s.
	for k, t := range userFreq {
		m.x[k] = 1 + (MaxScore-1)*(2/(1+math.Exp(-t))-1)
	}
	for k, s := range itemSent {
		m.y[k] = 1 + (MaxScore-1)/(1+math.Exp(-s))
	}

	m.initFactors()
	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := m.sweep(); err != nil {
			return nil, fmt.Errorf("prefmodel: ALS iteration %d: %w", iter, err)
		}
	}
	return m, nil
}

func (m *Model) userIndex(u string) int {
	if i, ok := m.users[u]; ok {
		return i
	}
	i := len(m.users)
	m.users[u] = i
	return i
}

func (m *Model) itemIndex(id string) int {
	if i, ok := m.items[id]; ok {
		return i
	}
	i := len(m.items)
	m.items[id] = i
	return i
}

func (m *Model) initFactors() {
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	mk := func(n int) []linalg.Vector {
		out := make([]linalg.Vector, n)
		for i := range out {
			v := linalg.NewVector(m.cfg.Factors)
			for j := range v {
				v[j] = 0.1 + 0.1*rng.Float64()
			}
			out[i] = v
		}
		return out
	}
	m.userF = mk(len(m.users))
	m.itemF = mk(len(m.items))
	m.aspectF = mk(m.z)
}

// sweep performs one ALS pass: users given aspects, items given aspects,
// aspects given users+items.
func (m *Model) sweep() error {
	// Group observations by row for the per-row ridge solves.
	byUser := make([][]obs, len(m.userF))
	byItem := make([][]obs, len(m.itemF))
	byAspectU := make([][]obs, m.z)
	byAspectI := make([][]obs, m.z)
	for k, v := range m.x {
		byUser[k[0]] = append(byUser[k[0]], obs{k[1], v})
		byAspectU[k[1]] = append(byAspectU[k[1]], obs{k[0], v})
	}
	for k, v := range m.y {
		byItem[k[0]] = append(byItem[k[0]], obs{k[1], v})
		byAspectI[k[1]] = append(byAspectI[k[1]], obs{k[0], v})
	}
	// Map iteration order is random; sort each group so the ridge solves
	// see a fixed row order and training is bit-for-bit deterministic.
	for _, groups := range [][][]obs{byUser, byItem, byAspectU, byAspectI} {
		for _, g := range groups {
			sort.Slice(g, func(a, b int) bool { return g[a].col < g[b].col })
		}
	}
	for u := range m.userF {
		if err := m.solveRow(m.userF[u], byUser[u], m.aspectF, nil, nil); err != nil {
			return err
		}
	}
	for i := range m.itemF {
		if err := m.solveRow(m.itemF[i], byItem[i], m.aspectF, nil, nil); err != nil {
			return err
		}
	}
	for a := range m.aspectF {
		if err := m.solveRow(m.aspectF[a], byAspectU[a], m.userF, byAspectI[a], m.itemF); err != nil {
			return err
		}
	}
	return nil
}

type obs struct {
	col int
	val float64
}

// solveRow updates row in place: min_row Σ (row·basis[col] − val)² + reg‖row‖²
// over the observations, optionally stacking a second observation block
// (the shared-aspect update sees both user and item observations).
func (m *Model) solveRow(row linalg.Vector, o1 []obs, basis1 []linalg.Vector, o2 []obs, basis2 []linalg.Vector) error {
	n := len(o1) + len(o2)
	if n == 0 {
		return nil // no observations; keep previous factors
	}
	f := m.cfg.Factors
	design := linalg.NewMatrix(n, f)
	target := linalg.NewVector(n)
	r := 0
	fill := func(os []obs, basis []linalg.Vector) {
		for _, ob := range os {
			b := basis[ob.col]
			for j := 0; j < f; j++ {
				design.Set(r, j, b[j])
			}
			target[r] = ob.val
			r++
		}
	}
	fill(o1, basis1)
	if o2 != nil {
		fill(o2, basis2)
	}
	sol, err := linalg.RidgeSolve(design, target, m.cfg.Reg)
	if err != nil {
		return err
	}
	copy(row, sol)
	return nil
}

// PredictItemAspect returns the learned quality score of (itemID, aspect)
// in [1, MaxScore] (clamped), or an error for unknown items/aspects.
func (m *Model) PredictItemAspect(itemID string, aspect int) (float64, error) {
	i, ok := m.items[itemID]
	if !ok {
		return 0, fmt.Errorf("prefmodel: unknown item %q", itemID)
	}
	if aspect < 0 || aspect >= m.z {
		return 0, fmt.Errorf("prefmodel: aspect %d out of range [0,%d)", aspect, m.z)
	}
	return clampScore(m.itemF[i].Dot(m.aspectF[aspect])), nil
}

// PredictUserAspect returns the learned attention score of (user, aspect).
func (m *Model) PredictUserAspect(user string, aspect int) (float64, error) {
	u, ok := m.users[user]
	if !ok {
		return 0, fmt.Errorf("prefmodel: unknown user %q", user)
	}
	if aspect < 0 || aspect >= m.z {
		return 0, fmt.Errorf("prefmodel: aspect %d out of range [0,%d)", aspect, m.z)
	}
	return clampScore(m.userF[u].Dot(m.aspectF[aspect])), nil
}

// TopAspects returns the item's k highest-scoring aspects by learned
// quality, descending.
func (m *Model) TopAspects(itemID string, k int) ([]int, error) {
	if _, ok := m.items[itemID]; !ok {
		return nil, fmt.Errorf("prefmodel: unknown item %q", itemID)
	}
	type pair struct {
		a int
		s float64
	}
	ps := make([]pair, m.z)
	for a := 0; a < m.z; a++ {
		s, _ := m.PredictItemAspect(itemID, a)
		ps[a] = pair{a, s}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].s != ps[j].s {
			return ps[i].s > ps[j].s
		}
		return ps[i].a < ps[j].a
	})
	if k > len(ps) {
		k = len(ps)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].a
	}
	return out, nil
}

// FitRMSE reports the reconstruction error over the observed X and Y
// entries — a training-quality diagnostic.
func (m *Model) FitRMSE() (xRMSE, yRMSE float64) {
	var sx, sy float64
	for k, v := range m.x {
		d := m.userF[k[0]].Dot(m.aspectF[k[1]]) - v
		sx += d * d
	}
	for k, v := range m.y {
		d := m.itemF[k[0]].Dot(m.aspectF[k[1]]) - v
		sy += d * d
	}
	if len(m.x) > 0 {
		xRMSE = math.Sqrt(sx / float64(len(m.x)))
	}
	if len(m.y) > 0 {
		yRMSE = math.Sqrt(sy / float64(len(m.y)))
	}
	return xRMSE, yRMSE
}

func clampScore(s float64) float64 {
	if s < 1 {
		return 1
	}
	if s > MaxScore {
		return MaxScore
	}
	return s
}
