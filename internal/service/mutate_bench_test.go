package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"comparesets/internal/model"
	"comparesets/internal/opinion"
)

// mutationBenchCorpus hand-builds an n-item corpus whose first item's
// also-bought list spans every other item, so selections over target p000
// cover the entire corpus and the old whole-epoch write path really did pay
// O(n) feature rebuilds (and O(n²) graph rebuilds) for a one-review delta.
func mutationBenchCorpus(tb testing.TB, n int) *model.Corpus {
	tb.Helper()
	aspects := make([]string, 12)
	for i := range aspects {
		aspects[i] = fmt.Sprintf("aspect%02d", i)
	}
	c := model.NewCorpus("Cellphone", model.NewVocabulary(aspects))
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("p%03d", i)
	}
	for i, id := range ids {
		item := &model.Item{ID: id, Title: "Product " + id}
		for _, other := range ids {
			if other != id {
				item.AlsoBought = append(item.AlsoBought, other)
			}
		}
		for j := 0; j < 8; j++ {
			pol := model.Positive
			if (i+j)%2 == 1 {
				pol = model.Negative
			}
			item.Reviews = append(item.Reviews, &model.Review{
				ID: fmt.Sprintf("%s-r%02d", id, j), ItemID: id, Rating: 1 + (i+j)%5,
				Mentions: []model.Mention{
					{Aspect: j % 12, Polarity: pol, Score: 1},
					{Aspect: (i + j) % 12, Polarity: model.Positive, Score: 1},
				},
			})
		}
		c.Items[id] = item
	}
	return c
}

func appendBody(b *testing.B, id string) []byte {
	b.Helper()
	buf, err := json.Marshal(AppendReviewsBody{Reviews: []*model.Review{{
		ID: id, Rating: 4,
		Mentions: []model.Mention{{Aspect: 3, Polarity: model.Positive, Score: 1}},
	}}})
	if err != nil {
		b.Fatal(err)
	}
	return buf
}

// benchMutateAppend measures the incremental write path: one HTTP append
// per iteration, which clones the corpus map, refills exactly one item's
// feature columns, and drops one item's cached problems. Cost is O(1) in
// the corpus's review count (plus the O(n) map clone).
func benchMutateAppend(b *testing.B, n int) {
	c := mutationBenchCorpus(b, n)
	s := New(map[string]*model.Corpus{"Cellphone": c}, nil)
	h := s.Handler()
	s.mu.RLock()
	s.feats["Cellphone"].Precompute(opinion.Binary{})
	s.mu.RUnlock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item := fmt.Sprintf("p%03d", 1+i%(n-1))
		r := httptest.NewRequest(http.MethodPost,
			"/api/v1/corpora/Cellphone/items/"+item+"/reviews",
			bytes.NewReader(appendBody(b, fmt.Sprintf("bench-%d", i))))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

// benchMutateRebuild measures what the same one-review delta cost before
// the mutation API existed: a whole-epoch AddCorpus flush followed by the
// feature precompute needed to restore a servable warm state. This is a
// lower bound on the old cost — the flush also discarded every cached
// regression problem, memoized graph, and cached response, whose rebuild
// on the next selects is not counted here.
func benchMutateRebuild(b *testing.B, n int) {
	c := mutationBenchCorpus(b, n)
	s := New(map[string]*model.Corpus{"Cellphone": c}, nil)
	s.mu.RLock()
	s.feats["Cellphone"].Precompute(opinion.Binary{})
	s.mu.RUnlock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item := fmt.Sprintf("p%03d", 1+i%(n-1))
		next := c.Clone()
		if _, err := next.AppendReviews(item, &model.Review{
			ID: fmt.Sprintf("bench-%d", i), Rating: 4,
			Mentions: []model.Mention{{Aspect: 3, Polarity: model.Positive, Score: 1}},
		}); err != nil {
			b.Fatal(err)
		}
		c = next
		s.AddCorpus("Cellphone", next)
		s.mu.RLock()
		fs := s.feats["Cellphone"]
		s.mu.RUnlock()
		fs.Precompute(opinion.Binary{})
	}
}

func BenchmarkMutateAppend64(b *testing.B)   { benchMutateAppend(b, 64) }
func BenchmarkMutateAppend256(b *testing.B)  { benchMutateAppend(b, 256) }
func BenchmarkMutateRebuild64(b *testing.B)  { benchMutateRebuild(b, 64) }
func BenchmarkMutateRebuild256(b *testing.B) { benchMutateRebuild(b, 256) }
