package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"comparesets/internal/dataset"
	"comparesets/internal/model"
)

// batchTargets returns n distinct qualifying targets of the server's
// Cellphone corpus.
func batchTargets(tb testing.TB, s *Server, n int) []string {
	tb.Helper()
	s.mu.RLock()
	targets := dataset.TargetIDs(s.corpora["Cellphone"])
	s.mu.RUnlock()
	if len(targets) < n {
		tb.Fatalf("corpus has %d targets, need %d", len(targets), n)
	}
	return targets[:n]
}

// normalizeResponse parses a select payload and strips elapsed_ms (the only
// field that legitimately differs between identical computations).
func normalizeResponse(tb testing.TB, body []byte) map[string]any {
	tb.Helper()
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		tb.Fatalf("unmarshal response: %v (%s)", err, body)
	}
	delete(out, "elapsed_ms")
	return out
}

// TestBatchedMatchesUnbatchedBytes locks the tentpole invariant: a batched
// group execution returns, for every member, a payload identical (modulo
// elapsed_ms) to what an unbatched server computes for the same request —
// shared slab passes and shared regression problems must not change a
// single result byte.
func TestBatchedMatchesUnbatchedBytes(t *testing.T) {
	c := cellphoneCorpus(t, 3)
	plain := New(map[string]*model.Corpus{"Cellphone": c}, nil)
	batched := NewWithOptions(map[string]*model.Corpus{"Cellphone": c}, nil,
		Options{BatchWindow: 25 * time.Millisecond, BatchMax: 8})
	ph, bh := plain.Handler(), batched.Handler()

	const n = 6
	targets := batchTargets(t, batched, n)
	want := make([]map[string]any, n)
	for i, tgt := range targets {
		req := hotRequest(t, plain)
		req.Target = tgt
		w := postRecorded(t, ph, "/api/v1/select", req)
		if w.Code != http.StatusOK {
			t.Fatalf("unbatched %s: status %d body %s", tgt, w.Code, w.Body.String())
		}
		want[i] = normalizeResponse(t, w.Body.Bytes())
	}

	got := make([]map[string]any, n)
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, tgt string) {
			defer wg.Done()
			req := hotRequest(t, batched)
			req.Target = tgt
			w := postRecorded(t, bh, "/api/v1/select", req)
			if w.Code != http.StatusOK {
				t.Errorf("batched %s: status %d body %s", tgt, w.Code, w.Body.String())
				return
			}
			got[i] = normalizeResponse(t, w.Body.Bytes())
		}(i, tgt)
	}
	wg.Wait()
	for i, tgt := range targets {
		if got[i] == nil {
			continue
		}
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("target %s: batched response differs from unbatched", tgt)
		}
	}
}

// TestBatchGroupsSimilarRequests asserts that concurrent same-shape
// requests for different targets actually share group executions, and that
// batched results still populate the per-request cache.
func TestBatchGroupsSimilarRequests(t *testing.T) {
	c := cellphoneCorpus(t, 3)
	s := NewWithOptions(map[string]*model.Corpus{"Cellphone": c}, nil,
		Options{BatchWindow: 100 * time.Millisecond, BatchMax: 4})
	h := s.Handler()
	targets := batchTargets(t, s, 4)

	bodies := make([][]byte, len(targets))
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, tgt string) {
			defer wg.Done()
			req := hotRequest(t, s)
			req.Target = tgt
			w := postRecorded(t, h, "/api/v1/select", req)
			if w.Code != http.StatusOK {
				t.Errorf("%s: status %d", tgt, w.Code)
				return
			}
			bodies[i] = w.Body.Bytes()
		}(i, tgt)
	}
	wg.Wait()

	// All four raced into the 100ms window with a 4-member seal: grouping
	// must have happened (at least one group held > 1 member). Executions
	// is bounded by the request count either way.
	execs := s.reg.Counter("comparesets_batch_executions_total",
		"Total batch group executions.", nil).Value()
	if execs == 0 || execs >= uint64(len(targets)) {
		t.Errorf("batch executions = %d for %d grouped requests, want in [1,%d)", execs, len(targets), len(targets))
	}

	// A repeat of any member must now be a cache hit with identical bytes.
	req := hotRequest(t, s)
	req.Target = targets[1]
	w := postRecorded(t, h, "/api/v1/select", req)
	if w.Code != http.StatusOK {
		t.Fatalf("repeat: status %d", w.Code)
	}
	if !bytes.Equal(w.Body.Bytes(), bodies[1]) {
		t.Error("cached repeat differs from the batched original")
	}
}

// TestBatchCanceledMemberDoesNotPoisonGroup cancels one member's request
// mid-batch and asserts the surviving members still get full responses.
func TestBatchCanceledMemberDoesNotPoisonGroup(t *testing.T) {
	c := cellphoneCorpus(t, 3)
	s := NewWithOptions(map[string]*model.Corpus{"Cellphone": c}, nil,
		Options{BatchWindow: 60 * time.Millisecond, BatchMax: 0})
	h := s.Handler()
	targets := batchTargets(t, s, 3)

	cctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	codes := make([]int, len(targets))
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, tgt string) {
			defer wg.Done()
			req := hotRequest(t, s)
			req.Target = tgt
			buf, err := json.Marshal(req)
			if err != nil {
				t.Error(err)
				return
			}
			r := httptest.NewRequest(http.MethodPost, "/api/v1/select", bytes.NewReader(buf))
			if i == 0 {
				r = r.WithContext(cctx)
			}
			w := httptest.NewRecorder()
			h.ServeHTTP(w, r)
			codes[i] = w.Code
		}(i, tgt)
	}
	// Give all three time to join the window, then cancel member 0 while
	// the group is still open or executing.
	time.Sleep(20 * time.Millisecond)
	cancel()
	wg.Wait()

	for i := 1; i < len(targets); i++ {
		if codes[i] != http.StatusOK {
			t.Errorf("surviving member %d: status %d, want 200", i, codes[i])
		}
	}
}

// benchBatchGroup measures batched cold-path serving at the given group
// size: each iteration purges the result cache and fires size concurrent
// same-shape requests for distinct targets, which seal into one batch
// group (BatchMax = size). MaxComparative pins the instance size so the
// collapsed μ-block scale √(n−1)·μ matches across members, letting the
// group's ProblemCache share the CompaReSetS+ problems of overlapping
// items, not just the base ones.
func benchBatchGroup(b *testing.B, size int) {
	c := cellphoneCorpus(b, 3)
	s := NewWithOptions(map[string]*model.Corpus{"Cellphone": c}, nil,
		Options{BatchWindow: 10 * time.Millisecond, BatchMax: size})
	h := s.Handler()
	targets := batchTargets(b, s, size)
	bodies := make([][]byte, size)
	for i, tgt := range targets {
		req := hotRequest(b, s)
		req.Target = tgt
		req.MaxComparative = 3
		buf, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = buf
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.cache.Purge()
		var wg sync.WaitGroup
		for _, body := range bodies {
			wg.Add(1)
			go func(body []byte) {
				defer wg.Done()
				postBench(b, h, body)
			}(body)
		}
		wg.Wait()
	}
}

// BenchmarkSelectBatch1/4/16 sweep the batch group size; per-request cost
// is op time divided by the group size. Recorded into BENCH_batch.json.
func BenchmarkSelectBatch1(b *testing.B)  { benchBatchGroup(b, 1) }
func BenchmarkSelectBatch4(b *testing.B)  { benchBatchGroup(b, 4) }
func BenchmarkSelectBatch16(b *testing.B) { benchBatchGroup(b, 16) }

// TestFloat32ServerParity runs the same requests on a float64 and a
// compact-mode server. The selection itself must match byte for byte
// (modulo elapsed_ms): the Binary scheme's 0/1 feature columns are exactly
// representable in float32, so the design matrices — and hence every
// regression — are identical. The shortlist graph is the one place float32
// legitimately perturbs values (its pairwise term streams narrowed φ
// vectors, which are normalized non-integers), so with K > 0 the member
// sets must agree but the weight only within the narrowing tolerance.
func TestFloat32ServerParity(t *testing.T) {
	c := cellphoneCorpus(t, 3)
	f64 := New(map[string]*model.Corpus{"Cellphone": c}, nil)
	f32 := NewWithOptions(map[string]*model.Corpus{"Cellphone": c}, nil, Options{Float32: true})
	for _, tgt := range batchTargets(t, f64, 4) {
		req := hotRequest(t, f64)
		req.Target = tgt
		req.K = 0
		a := postRecorded(t, f64.Handler(), "/api/v1/select", req)
		b := postRecorded(t, f32.Handler(), "/api/v1/select", req)
		if a.Code != http.StatusOK || b.Code != http.StatusOK {
			t.Fatalf("%s: status %d / %d", tgt, a.Code, b.Code)
		}
		if !reflect.DeepEqual(normalizeResponse(t, a.Body.Bytes()), normalizeResponse(t, b.Body.Bytes())) {
			t.Errorf("target %s: float32 selection differs from float64", tgt)
		}

		req.K = 3
		a = postRecorded(t, f64.Handler(), "/api/v1/select", req)
		b = postRecorded(t, f32.Handler(), "/api/v1/select", req)
		if a.Code != http.StatusOK || b.Code != http.StatusOK {
			t.Fatalf("%s (k=3): status %d / %d", tgt, a.Code, b.Code)
		}
		na, nb := normalizeResponse(t, a.Body.Bytes()), normalizeResponse(t, b.Body.Bytes())
		if !reflect.DeepEqual(na["shortlist"], nb["shortlist"]) {
			t.Errorf("target %s: float32 shortlist members differ: %v vs %v", tgt, na["shortlist"], nb["shortlist"])
		}
		wa, _ := na["shortlist_weight"].(float64)
		wb, _ := nb["shortlist_weight"].(float64)
		if diff := wa - wb; diff < -1e-4 || diff > 1e-4 {
			t.Errorf("target %s: shortlist weight %v (f64) vs %v (f32)", tgt, wa, wb)
		}
		delete(na, "shortlist_weight")
		delete(nb, "shortlist_weight")
		if !reflect.DeepEqual(na, nb) {
			t.Errorf("target %s: float32 k=3 response differs beyond shortlist weight", tgt)
		}
	}
}
