package service

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"comparesets/internal/obs"
)

// limiter is the select endpoint's admission controller: a bounded
// concurrency semaphore with a deadline-aware wait queue. Requests beyond
// the concurrency cap wait for a slot — unless the queue is full, or the
// expected wait (EWMA of recent pipeline service time × queue depth ahead,
// batched over the cap) already exceeds the request's own deadline, in
// which case the request is shed immediately with 503 and a Retry-After
// hint. Shedding early is the point: a request that would time out in the
// queue only wastes the slot another request could have used.
type limiter struct {
	capacity int
	maxQueue int
	slots    chan struct{} // capacity tokens; empty channel = all busy
	queued   atomic.Int64
	ewmaNs   atomic.Int64 // EWMA of service time (ns); 0 = no samples yet

	shed       func(reason string) *obs.Counter
	queueDepth *obs.Gauge
	inflight   *obs.Gauge
}

// ewmaSeed is the assumed service time before any sample lands (a generous
// pipeline latency, so a cold limiter sheds conservatively).
const ewmaSeed = 50 * time.Millisecond

func newLimiter(capacity, maxQueue int, reg *obs.Registry) *limiter {
	if maxQueue < 0 {
		maxQueue = 0
	}
	l := &limiter{
		capacity: capacity,
		maxQueue: maxQueue,
		slots:    make(chan struct{}, capacity),
		shed: func(reason string) *obs.Counter {
			return reg.Counter("comparesets_load_shed_total",
				"Requests shed by admission control.", obs.Labels{"reason": reason})
		},
		queueDepth: reg.Gauge("comparesets_admission_queue_depth",
			"Requests waiting for an execution slot.", nil),
		inflight: reg.Gauge("comparesets_admission_inflight",
			"Requests holding an execution slot.", nil),
	}
	for i := 0; i < capacity; i++ {
		l.slots <- struct{}{}
	}
	return l
}

// acquire admits the request or sheds it. On success the returned release
// must be called exactly once when the request finishes; it feeds the
// service-time EWMA the wait estimates come from.
func (l *limiter) acquire(ctx context.Context) (release func(), aerr *apiError) {
	select {
	case <-l.slots:
		return l.releaseFunc(), nil
	default:
	}
	pos := l.queued.Add(1)
	if int(pos) > l.maxQueue {
		l.queued.Add(-1)
		l.shed("queue_full").Inc()
		return nil, overloaded("server at capacity", l.expectedWait(int(pos)))
	}
	l.queueDepth.Add(1)
	defer func() {
		l.queued.Add(-1)
		l.queueDepth.Add(-1)
	}()
	wait := l.expectedWait(int(pos))
	if d, ok := ctx.Deadline(); ok && time.Until(d) < wait {
		l.shed("deadline").Inc()
		return nil, overloaded("expected queue wait exceeds request deadline", wait)
	}
	select {
	case <-l.slots:
		return l.releaseFunc(), nil
	case <-ctx.Done():
		return nil, asAPIError(ctx.Err())
	}
}

// releaseFunc hands back the slot and records the observed service time.
func (l *limiter) releaseFunc() func() {
	l.inflight.Add(1)
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			l.observe(time.Since(start))
			l.inflight.Add(-1)
			l.slots <- struct{}{}
		})
	}
}

// observe folds one service time into the EWMA (α = 1/8).
func (l *limiter) observe(d time.Duration) {
	for {
		old := l.ewmaNs.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/8
		}
		if l.ewmaNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// expectedWait estimates how long the pos-th queued request will wait: the
// queue drains capacity slots per service interval.
func (l *limiter) expectedWait(pos int) time.Duration {
	avg := time.Duration(l.ewmaNs.Load())
	if avg == 0 {
		avg = ewmaSeed
	}
	batches := (pos + l.capacity - 1) / l.capacity
	return avg * time.Duration(batches)
}

// busy reports slots exhausted with requests already waiting — the
// pressure signal the shortlist degradation ladder keys on.
func (l *limiter) busy() bool {
	return len(l.slots) == 0 && l.queued.Load() > 0
}

// saturated reports the queue at (or beyond) its bound — the readiness
// probe's overloaded signal.
func (l *limiter) saturated() bool {
	return len(l.slots) == 0 && int(l.queued.Load()) >= l.maxQueue
}

// state summarizes the limiter for the readiness probe.
func (l *limiter) state() string {
	switch {
	case l.saturated():
		return "saturated"
	case l.busy():
		return "busy"
	default:
		return fmt.Sprintf("ok (%d/%d slots free)", len(l.slots), l.capacity)
	}
}

// overloaded builds the 503 shed response; Retry-After is the expected
// wait rounded up to whole seconds (minimum 1).
func overloaded(msg string, wait time.Duration) *apiError {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return &apiError{
		status:     503,
		code:       CodeOverloaded,
		err:        fmt.Errorf("%s (expected wait %v)", msg, wait.Round(time.Millisecond)),
		retryAfter: secs,
	}
}
