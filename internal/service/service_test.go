package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"comparesets/internal/datagen"
	"comparesets/internal/dataset"
	"comparesets/internal/lexicon"
	"comparesets/internal/model"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	c, err := datagen.Generate(datagen.Config{
		Category: lexicon.Cellphone, Products: 30, Reviewers: 60,
		MeanReviews: 8, MeanAlsoBought: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(map[string]*model.Corpus{"Cellphone": c}, nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func post(t *testing.T, url string, payload any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("status %d body %s", resp.StatusCode, body)
	}
}

func TestCategories(t *testing.T) {
	_, ts := testServer(t)
	resp, body := get(t, ts.URL+"/api/v1/categories")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var infos []CategoryInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "Cellphone" || infos[0].Products != 30 {
		t.Errorf("infos = %+v", infos)
	}
}

func TestTargets(t *testing.T) {
	_, ts := testServer(t)
	resp, body := get(t, ts.URL+"/api/v1/targets?category=Cellphone")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var ids []string
	if err := json.Unmarshal(body, &ids); err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Error("no targets")
	}
	resp, _ = get(t, ts.URL+"/api/v1/targets?category=Nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d for unknown category", resp.StatusCode)
	}
}

func TestSelectCorpusReference(t *testing.T) {
	s, ts := testServer(t)
	s.mu.RLock()
	targets := dataset.TargetIDs(s.corpora["Cellphone"])
	s.mu.RUnlock()
	req := SelectRequest{
		Category: "Cellphone", Target: targets[0],
		M: 3, Lambda: 1, Mu: 0.1, K: 3, Method: "exact",
	}
	resp, body := post(t, ts.URL+"/api/v1/select", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var out SelectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "CompaReSetS+" {
		t.Errorf("algorithm = %s", out.Algorithm)
	}
	if len(out.Items) < 3 || !out.Items[0].IsTarget {
		t.Errorf("items = %+v", out.Items)
	}
	for _, it := range out.Items {
		if len(it.Reviews) > 3 {
			t.Errorf("item %s has %d reviews", it.ID, len(it.Reviews))
		}
	}
	if len(out.Shortlist) != 3 || out.Shortlist[0] != 0 {
		t.Errorf("shortlist = %v", out.Shortlist)
	}
}

func TestSelectInlineInstance(t *testing.T) {
	_, ts := testServer(t)
	mention := func(a int, pol model.Polarity) model.Mention {
		return model.Mention{Aspect: a, Polarity: pol, Score: 1}
	}
	req := SelectRequest{
		Aspects: []string{"battery", "screen"},
		Items: []*model.Item{
			{ID: "t", Title: "Target", Reviews: []*model.Review{
				{ID: "r1", Mentions: []model.Mention{mention(0, model.Positive)}},
				{ID: "r2", Mentions: []model.Mention{mention(1, model.Negative)}},
			}},
			{ID: "c", Title: "Comp", Reviews: []*model.Review{
				{ID: "r3", Mentions: []model.Mention{mention(0, model.Negative)}},
			}},
		},
		Algorithm: "CompaReSetS", M: 1, Lambda: 1,
	}
	resp, body := post(t, ts.URL+"/api/v1/select", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var out SelectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 2 || len(out.Items[0].Reviews) != 1 {
		t.Errorf("out = %+v", out)
	}
}

func TestSelectValidation(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name   string
		req    SelectRequest
		status int
	}{
		{"missing everything", SelectRequest{M: 3}, http.StatusBadRequest},
		{"unknown category", SelectRequest{Category: "X", Target: "y", M: 3}, http.StatusNotFound},
		{"unknown target", SelectRequest{Category: "Cellphone", Target: "zzz", M: 3}, http.StatusNotFound},
		{"bad algorithm", SelectRequest{
			Aspects: []string{"a"}, Items: []*model.Item{{ID: "t"}},
			Algorithm: "Magic", M: 3,
		}, http.StatusUnprocessableEntity},
		{"bad m", SelectRequest{
			Aspects: []string{"a"}, Items: []*model.Item{{ID: "t"}}, M: 0,
		}, http.StatusUnprocessableEntity},
		{"inline without aspects", SelectRequest{
			Items: []*model.Item{{ID: "t"}}, M: 3,
		}, http.StatusUnprocessableEntity},
		{"bad shortlist method", SelectRequest{
			Aspects: []string{"a"}, Items: []*model.Item{{ID: "t"}},
			M: 3, Lambda: 1, K: 1, Method: "psychic",
		}, http.StatusUnprocessableEntity},
	}
	wantCode := map[int]string{
		http.StatusBadRequest:          CodeBadRequest,
		http.StatusNotFound:            CodeNotFound,
		http.StatusUnprocessableEntity: CodeUnprocessable,
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+"/api/v1/select", c.req)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d (want %d), body %s", c.name, resp.StatusCode, c.status, body)
			continue
		}
		var envelope ErrorResponse
		if err := json.Unmarshal(body, &envelope); err != nil {
			t.Errorf("%s: unmarshalling envelope from %s: %v", c.name, body, err)
			continue
		}
		if envelope.Error.Code != wantCode[c.status] || envelope.Error.Message == "" {
			t.Errorf("%s: envelope = %+v (want code %s)", c.name, envelope, wantCode[c.status])
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/api/v1/select", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
}

func TestExtract(t *testing.T) {
	_, ts := testServer(t)
	req := ExtractRequest{Category: "Cellphone", Text: "the battery lasts all day, great endurance. the cable frayed within weeks, very cheap."}
	resp, body := post(t, ts.URL+"/api/v1/extract", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var out ExtractResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Mentions) != 2 {
		t.Fatalf("mentions = %+v", out.Mentions)
	}
	byName := map[string]string{}
	for _, m := range out.Mentions {
		byName[m.Name] = m.Polarity
	}
	if byName["battery"] != "+" || byName["cable"] != "-" {
		t.Errorf("mentions = %+v", out.Mentions)
	}
	resp, _ = post(t, ts.URL+"/api/v1/extract", ExtractRequest{Category: "Nope", Text: "x"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown category: status %d", resp.StatusCode)
	}
}

func TestSelectWithSummaryAndExplanations(t *testing.T) {
	s, ts := testServer(t)
	s.mu.RLock()
	targets := dataset.TargetIDs(s.corpora["Cellphone"])
	s.mu.RUnlock()
	req := SelectRequest{
		Category: "Cellphone", Target: targets[0],
		M: 3, Lambda: 1, Mu: 0.1,
		Summarize: 1, Explain: 4,
	}
	resp, body := post(t, ts.URL+"/api/v1/select", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var out SelectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	summaries := 0
	for _, it := range out.Items {
		if len(it.Summary) > 1 {
			t.Errorf("item %s summary too long: %v", it.ID, it.Summary)
		}
		summaries += len(it.Summary)
	}
	if summaries == 0 {
		t.Error("no summaries returned")
	}
	if len(out.Explanations) == 0 || len(out.Explanations) > 4 {
		t.Errorf("explanations = %v", out.Explanations)
	}
}

func TestSelectWithMetrics(t *testing.T) {
	s, ts := testServer(t)
	s.mu.RLock()
	targets := dataset.TargetIDs(s.corpora["Cellphone"])
	s.mu.RUnlock()
	req := SelectRequest{
		Category: "Cellphone", Target: targets[0],
		M: 3, Lambda: 1, Mu: 0.1, Metrics: true,
	}
	resp, body := post(t, ts.URL+"/api/v1/select", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var out SelectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Metrics == nil {
		t.Fatal("metrics missing")
	}
	if out.Metrics.AspectCoverage <= 0 || out.Metrics.AspectCoverage > 1 {
		t.Errorf("aspect coverage = %v", out.Metrics.AspectCoverage)
	}
	// Without the flag, metrics stay absent.
	req.Metrics = false
	_, body = post(t, ts.URL+"/api/v1/select", req)
	var out2 SelectResponse
	if err := json.Unmarshal(body, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.Metrics != nil {
		t.Error("metrics present without request")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/v1/select")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET select: status %d", resp.StatusCode)
	}
}

func TestAddCorpusAtRuntime(t *testing.T) {
	s, ts := testServer(t)
	c, err := datagen.Generate(datagen.Config{
		Category: lexicon.Toy, Products: 10, Reviewers: 20,
		MeanReviews: 5, MeanAlsoBought: 3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AddCorpus("Toy", c)
	resp, body := get(t, ts.URL+"/api/v1/categories")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "Toy") {
		t.Errorf("categories after add: %s", body)
	}
}

func TestConcurrentSelects(t *testing.T) {
	// Per-target queries are independent; hammer the endpoint in parallel.
	s, ts := testServer(t)
	s.mu.RLock()
	targets := dataset.TargetIDs(s.corpora["Cellphone"])
	s.mu.RUnlock()
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			req := SelectRequest{
				Category: "Cellphone", Target: targets[i%len(targets)],
				M: 2, Lambda: 1, Mu: 0.1,
			}
			resp, body := post(t, ts.URL+"/api/v1/select", req)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}
