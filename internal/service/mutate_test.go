package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"comparesets/internal/datagen"
	"comparesets/internal/dataset"
	"comparesets/internal/lexicon"
	"comparesets/internal/model"
)

// doJSON issues one request with a JSON body (nil payload sends no body) and
// returns the response plus its fully-read body.
func doJSON(t *testing.T, method, url string, payload any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if payload != nil {
		buf, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func decodeReceipt(t *testing.T, body []byte) *MutationReceipt {
	t.Helper()
	var rc MutationReceipt
	if err := json.Unmarshal(body, &rc); err != nil {
		t.Fatalf("unmarshalling receipt %s: %v", body, err)
	}
	return &rc
}

func decodeAPIError(t *testing.T, body []byte) ErrorBody {
	t.Helper()
	var env ErrorResponse
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("unmarshalling error %s: %v", body, err)
	}
	return env.Error
}

// metricValue scrapes /metrics and returns the value of the series line
// starting with prefix (0 when the series does not exist yet). The registry
// is process-global, so tests assert deltas, not absolute values.
func metricValue(t *testing.T, ts *httptest.Server, prefix string) float64 {
	t.Helper()
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, prefix+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

func TestMutationLifecycleReceipts(t *testing.T) {
	s, ts := testServer(t)
	s.mu.RLock()
	c := s.corpora["Cellphone"]
	item := dataset.TargetIDs(c)[0]
	before := len(c.Items[item].Reviews)
	s.mu.RUnlock()

	series := []string{
		`comparesets_mutations_total{kind="append"}`,
		`comparesets_mutations_total{kind="update"}`,
		`comparesets_mutations_total{kind="remove"}`,
		`comparesets_invalidations_total{scope="item"}`,
		`comparesets_pipeline_stage_duration_seconds_count{stage="mutate_apply"}`,
	}
	baseline := make([]float64, len(series))
	for i, sr := range series {
		baseline[i] = metricValue(t, ts, sr)
	}

	base := ts.URL + "/api/v1/corpora/Cellphone/items/" + item + "/reviews"

	// Append one review: generation 1, one fresh column set per scheme.
	resp, body := doJSON(t, http.MethodPost, base, AppendReviewsBody{Reviews: []*model.Review{
		{ID: "mut-r1", Rating: 5, Mentions: []model.Mention{{Aspect: 0, Polarity: model.Positive, Score: 1}}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d body %s", resp.StatusCode, body)
	}
	rc := decodeReceipt(t, body)
	if rc.Kind != "append" || rc.Category != "Cellphone" || rc.Item != item {
		t.Errorf("receipt = %+v", rc)
	}
	if len(rc.Reviews) != 1 || rc.Reviews[0] != "mut-r1" {
		t.Errorf("reviews = %v", rc.Reviews)
	}
	if rc.Generation != 1 {
		t.Errorf("generation = %d (want 1)", rc.Generation)
	}
	if rc.Invalidation.Scope != "item" {
		t.Errorf("scope = %q", rc.Invalidation.Scope)
	}
	if len(rc.AffectedItems) != 1 || rc.AffectedItems[0] != item {
		t.Errorf("affected = %v", rc.AffectedItems)
	}
	s.mu.RLock()
	after := len(s.corpora["Cellphone"].Items[item].Reviews)
	s.mu.RUnlock()
	if after != before+1 {
		t.Errorf("review count %d -> %d (want +1)", before, after)
	}

	// Update the appended review: generation 2, same review count.
	resp, body = doJSON(t, http.MethodPatch, base+"/mut-r1", model.Review{
		Rating: 1, Mentions: []model.Mention{{Aspect: 1, Polarity: model.Negative, Score: 1}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d body %s", resp.StatusCode, body)
	}
	rc = decodeReceipt(t, body)
	if rc.Kind != "update" || rc.Generation != 2 {
		t.Errorf("update receipt = %+v", rc)
	}

	// Remove it: generation 3, count back to the original.
	resp, body = doJSON(t, http.MethodDelete, base+"/mut-r1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: status %d body %s", resp.StatusCode, body)
	}
	rc = decodeReceipt(t, body)
	if rc.Kind != "remove" || rc.Generation != 3 {
		t.Errorf("remove receipt = %+v", rc)
	}
	s.mu.RLock()
	final := len(s.corpora["Cellphone"].Items[item].Reviews)
	s.mu.RUnlock()
	if final != before {
		t.Errorf("review count after remove = %d (want %d)", final, before)
	}

	// Mutation metrics: one increment per kind, three item-scope
	// invalidations, three mutate_apply stage observations.
	for i, want := range []float64{1, 1, 1, 3, 3} {
		if got := metricValue(t, ts, series[i]) - baseline[i]; got != want {
			t.Errorf("%s delta = %g (want %g)", series[i], got, want)
		}
	}
}

func TestMutationHTTPErrors(t *testing.T) {
	s, ts := testServer(t)
	s.mu.RLock()
	item := dataset.TargetIDs(s.corpora["Cellphone"])[0]
	existing := s.corpora["Cellphone"].Items[item].Reviews[0].ID
	s.mu.RUnlock()
	base := ts.URL + "/api/v1/corpora/Cellphone/items/" + item + "/reviews"

	cases := []struct {
		name   string
		method string
		url    string
		body   any
		status int
		field  string
	}{
		{"unknown category", http.MethodPost, ts.URL + "/api/v1/corpora/Nope/items/x/reviews",
			AppendReviewsBody{Reviews: []*model.Review{{ID: "r", Rating: 3}}}, http.StatusNotFound, ""},
		{"unknown item", http.MethodPost, ts.URL + "/api/v1/corpora/Cellphone/items/nope/reviews",
			AppendReviewsBody{Reviews: []*model.Review{{ID: "r", Rating: 3}}}, http.StatusNotFound, ""},
		{"empty reviews", http.MethodPost, base, AppendReviewsBody{}, http.StatusUnprocessableEntity, "reviews"},
		{"duplicate id", http.MethodPost, base,
			AppendReviewsBody{Reviews: []*model.Review{{ID: existing, Rating: 3}}}, http.StatusUnprocessableEntity, "id"},
		{"missing id", http.MethodPost, base,
			AppendReviewsBody{Reviews: []*model.Review{{Rating: 3}}}, http.StatusUnprocessableEntity, "id"},
		{"bad aspect", http.MethodPost, base,
			AppendReviewsBody{Reviews: []*model.Review{{ID: "bad", Rating: 3,
				Mentions: []model.Mention{{Aspect: 999, Polarity: model.Positive, Score: 1}}}}},
			http.StatusUnprocessableEntity, "mentions"},
		{"item mismatch", http.MethodPost, base,
			AppendReviewsBody{Reviews: []*model.Review{{ID: "bad", ItemID: "other", Rating: 3}}},
			http.StatusUnprocessableEntity, "item_id"},
		{"update id mismatch", http.MethodPatch, base + "/" + existing,
			model.Review{ID: "different", Rating: 3}, http.StatusUnprocessableEntity, "id"},
		{"update unknown review", http.MethodPatch, base + "/nope",
			model.Review{Rating: 3}, http.StatusNotFound, ""},
		{"remove unknown review", http.MethodDelete, base + "/nope", nil, http.StatusNotFound, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doJSON(t, tc.method, tc.url, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d (want %d), body %s", resp.StatusCode, tc.status, body)
			}
			eb := decodeAPIError(t, body)
			if eb.Field != tc.field {
				t.Errorf("field = %q (want %q), body %s", eb.Field, tc.field, body)
			}
			if tc.status == http.StatusUnprocessableEntity && eb.Code != CodeUnprocessable {
				t.Errorf("code = %q", eb.Code)
			}
		})
	}

	// Failed mutations must not bump generations or counters.
	s.mu.RLock()
	gens := s.gens["Cellphone"]
	s.mu.RUnlock()
	if len(gens) != 0 {
		t.Errorf("generations bumped by failed mutations: %v", gens)
	}
}

// TestWarmHitPreservation is the point of per-item generations: mutating one
// item must not evict cached selections whose instances don't contain it.
func TestWarmHitPreservation(t *testing.T) {
	s, ts := testServer(t)
	s.mu.RLock()
	c := s.corpora["Cellphone"]
	targets := dataset.TargetIDs(c)
	s.mu.RUnlock()

	// Pick a target and find an item outside its instance to mutate.
	target := targets[0]
	inst, err := c.NewInstance(target, 0)
	if err != nil {
		t.Fatal(err)
	}
	members := map[string]bool{}
	for _, it := range inst.Items {
		members[it.ID] = true
	}
	outsider := ""
	for id := range c.Items {
		if !members[id] {
			outsider = id
			break
		}
	}
	if outsider == "" {
		t.Skip("every item is in the target's instance")
	}

	req := SelectRequest{Category: "Cellphone", Target: target, M: 3, Lambda: 1, Mu: 0.1}
	if resp, body := post(t, ts.URL+"/api/v1/select", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("select: status %d body %s", resp.StatusCode, body)
	}
	canonical := req
	canonical.Algorithm = "CompaReSetS+" // handler default, applied pre-keying

	s.mu.RLock()
	base := s.epochs["Cellphone"]
	s.mu.RUnlock()
	key := selectKey(&canonical, base)
	if _, hit := s.cache.Get(key); !hit {
		t.Fatalf("no cached entry under base epoch key after select")
	}

	// Mutate the outsider: the target's instance has no touched member, so
	// instanceEpoch stays the bare base token and the entry stays reachable.
	resp, body := doJSON(t, http.MethodPost,
		ts.URL+"/api/v1/corpora/Cellphone/items/"+outsider+"/reviews",
		AppendReviewsBody{Reviews: []*model.Review{{ID: "out-r1", Rating: 4}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate outsider: status %d body %s", resp.StatusCode, body)
	}
	s.mu.RLock()
	epoch := instanceEpoch(base, s.gens["Cellphone"], inst)
	s.mu.RUnlock()
	if epoch != base {
		t.Fatalf("instance epoch changed by unrelated mutation: %q -> %q", base, epoch)
	}
	if _, hit := s.cache.Get(key); !hit {
		t.Errorf("cached selection evicted by unrelated mutation")
	}

	// Mutate the target itself: the instance re-keys, so the handler now
	// looks up a different key and recomputes against the new corpus.
	resp, body = doJSON(t, http.MethodPost,
		ts.URL+"/api/v1/corpora/Cellphone/items/"+target+"/reviews",
		AppendReviewsBody{Reviews: []*model.Review{{ID: "tgt-r1", Rating: 2}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate target: status %d body %s", resp.StatusCode, body)
	}
	s.mu.RLock()
	c2 := s.corpora["Cellphone"]
	inst2, err := c2.NewInstance(target, 0)
	if err != nil {
		s.mu.RUnlock()
		t.Fatal(err)
	}
	epoch2 := instanceEpoch(base, s.gens["Cellphone"], inst2)
	s.mu.RUnlock()
	if epoch2 == base {
		t.Fatalf("instance epoch unchanged after mutating a member")
	}
	if _, hit := s.cache.Get(selectKey(&canonical, epoch2)); hit {
		t.Fatalf("fresh epoch key already cached before re-select")
	}
	if resp, body := post(t, ts.URL+"/api/v1/select", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-select: status %d body %s", resp.StatusCode, body)
	}
	if _, hit := s.cache.Get(selectKey(&canonical, epoch2)); !hit {
		t.Errorf("re-select did not cache under the new epoch key")
	}
}

// stripTiming zeroes the wall-clock field so responses can be compared
// byte-for-byte: everything else in a SelectResponse is deterministic.
func stripTiming(t *testing.T, body []byte) []byte {
	t.Helper()
	var resp SelectResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshalling %s: %v", body, err)
	}
	resp.ElapsedMS = 0
	out, err := json.Marshal(&resp)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMutationRebuildParity is the incremental-path certificate: a server
// that absorbed a seeded sequence of HTTP mutations must serve selections
// byte-identical (modulo timing) to a server built fresh from the final
// corpus — i.e. the delta path through featstore, ProblemCache, graph memo,
// and cache keying loses nothing relative to a whole-epoch rebuild.
func TestMutationRebuildParity(t *testing.T) {
	cfg := datagen.Config{
		Category: lexicon.Cellphone, Products: 24, Reviewers: 40,
		MeanReviews: 6, MeanAlsoBought: 4, Seed: 11,
	}
	gen := func() *model.Corpus {
		c, err := datagen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	live := New(map[string]*model.Corpus{"Cellphone": gen()}, nil)
	ts := httptest.NewServer(live.Handler())
	defer ts.Close()

	// Shadow applies the same deltas at the model layer; the rebuilt server
	// is then constructed from the shadow's final state in one shot.
	shadow := gen()
	ids := dataset.TargetIDs(shadow)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		item := ids[rng.Intn(len(ids))]
		base := ts.URL + "/api/v1/corpora/Cellphone/items/" + item + "/reviews"
		switch rng.Intn(3) {
		case 0:
			r := &model.Review{ID: fmt.Sprintf("par-%d", i), Rating: 1 + rng.Intn(5),
				Mentions: []model.Mention{{Aspect: rng.Intn(shadow.Aspects.Len()), Polarity: model.Positive, Score: 1}}}
			cp := *r
			if resp, body := doJSON(t, http.MethodPost, base, AppendReviewsBody{Reviews: []*model.Review{r}}); resp.StatusCode != http.StatusOK {
				t.Fatalf("append %d: status %d body %s", i, resp.StatusCode, body)
			}
			if _, err := shadow.AppendReviews(item, &cp); err != nil {
				t.Fatal(err)
			}
		case 1:
			old := shadow.Items[item].Reviews[0]
			r := &model.Review{ID: old.ID, Rating: 1 + rng.Intn(5),
				Mentions: []model.Mention{{Aspect: rng.Intn(shadow.Aspects.Len()), Polarity: model.Negative, Score: 1}}}
			cp := *r
			if resp, body := doJSON(t, http.MethodPatch, base+"/"+old.ID, r); resp.StatusCode != http.StatusOK {
				t.Fatalf("update %d: status %d body %s", i, resp.StatusCode, body)
			}
			if _, err := shadow.UpdateReview(item, &cp); err != nil {
				t.Fatal(err)
			}
		default:
			rs := shadow.Items[item].Reviews
			if len(rs) < 2 {
				continue // keep every item non-empty
			}
			id := rs[len(rs)-1].ID
			if resp, body := doJSON(t, http.MethodDelete, base+"/"+id, nil); resp.StatusCode != http.StatusOK {
				t.Fatalf("remove %d: status %d body %s", i, resp.StatusCode, body)
			}
			if _, err := shadow.RemoveReview(item, id); err != nil {
				t.Fatal(err)
			}
		}
	}

	rebuilt := New(map[string]*model.Corpus{"Cellphone": shadow}, nil)
	ts2 := httptest.NewServer(rebuilt.Handler())
	defer ts2.Close()

	for _, target := range ids[:6] {
		req := SelectRequest{Category: "Cellphone", Target: target, M: 3, Lambda: 1, Mu: 0.1, K: 3, Method: "greedy"}
		// Two rounds: the second exercises the live server's memoized graph
		// and warm caches against the rebuilt server's.
		for round := 0; round < 2; round++ {
			r1, b1 := post(t, ts.URL+"/api/v1/select", req)
			r2, b2 := post(t, ts2.URL+"/api/v1/select", req)
			if r1.StatusCode != http.StatusOK || r2.StatusCode != http.StatusOK {
				t.Fatalf("target %s: statuses %d/%d bodies %s / %s", target, r1.StatusCode, r2.StatusCode, b1, b2)
			}
			got, want := stripTiming(t, b1), stripTiming(t, b2)
			if !bytes.Equal(got, want) {
				t.Errorf("target %s round %d: incremental response diverges from rebuild\n inc: %s\n reb: %s", target, round, got, want)
			}
		}
	}
}

// TestMutateWhileSelect hammers the mutation endpoints concurrently with
// selects; under -race this certifies the copy-on-write swap, the featstore
// atomic corpus pointer, and the graph memo locking.
func TestMutateWhileSelect(t *testing.T) {
	s, ts := testServer(t)
	s.mu.RLock()
	targets := dataset.TargetIDs(s.corpora["Cellphone"])
	aspects := s.corpora["Cellphone"].Aspects.Len()
	s.mu.RUnlock()

	const writers, readers, iters = 2, 4, 15
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				item := targets[(w*iters+i)%len(targets)]
				id := fmt.Sprintf("race-w%d-%d", w, i)
				url := ts.URL + "/api/v1/corpora/Cellphone/items/" + item + "/reviews"
				resp, body := doJSON(t, http.MethodPost, url, AppendReviewsBody{Reviews: []*model.Review{
					{ID: id, Rating: 1 + i%5, Mentions: []model.Mention{{Aspect: i % aspects, Polarity: model.Positive, Score: 1}}},
				}})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d append: status %d body %s", w, resp.StatusCode, body)
					return
				}
				resp, body = doJSON(t, http.MethodDelete, url+"/"+id, nil)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d remove: status %d body %s", w, resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req := SelectRequest{
					Category: "Cellphone", Target: targets[(r+i)%len(targets)],
					M: 3, Lambda: 1, Mu: 0.1,
				}
				resp, body := post(t, ts.URL+"/api/v1/select", req)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d select: status %d body %s", r, resp.StatusCode, body)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
