package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"comparesets/internal/obs"
)

// API error codes used in the error envelope.
const (
	// CodeBadRequest marks malformed requests: unparseable JSON or a body
	// missing a required combination of fields (HTTP 400).
	CodeBadRequest = "bad_request"
	// CodeNotFound marks references to unknown resources: categories or
	// target products not loaded on this server (HTTP 404).
	CodeNotFound = "not_found"
	// CodeUnprocessable marks well-formed requests with semantically
	// invalid values: unknown algorithms or methods, invalid
	// hyperparameters, inconsistent inline instances (HTTP 422).
	CodeUnprocessable = "unprocessable"
	// CodeDeadlineExceeded marks requests that ran out of their timeout_ms
	// budget or were cancelled by the client (HTTP 504).
	CodeDeadlineExceeded = "deadline_exceeded"
)

// ErrorBody is the machine-readable error payload.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the envelope every non-2xx response carries:
// {"error":{"code":"...","message":"..."}}.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// apiError couples an HTTP status and a stable code with the underlying
// error; handlers return it and a single writer renders the envelope.
type apiError struct {
	status int
	code   string
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }
func (e *apiError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: CodeBadRequest, err: fmt.Errorf(format, args...)}
}

func notFound(format string, args ...any) *apiError {
	return &apiError{status: http.StatusNotFound, code: CodeNotFound, err: fmt.Errorf(format, args...)}
}

func unprocessable(err error) *apiError {
	return &apiError{status: http.StatusUnprocessableEntity, code: CodeUnprocessable, err: err}
}

// asAPIError normalizes any handler error into an apiError: context
// cancellation maps to 504/deadline_exceeded, everything else to 422 (the
// request parsed but could not be served as stated).
func asAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &apiError{status: http.StatusGatewayTimeout, code: CodeDeadlineExceeded, err: err}
	}
	return unprocessable(err)
}

func writeAPIError(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.status, ErrorResponse{Error: ErrorBody{Code: e.code, Message: e.err.Error()}})
}

// statusRecorder captures the status code written by a handler so the
// middleware can label the request counter with it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// instrument wraps a handler with per-endpoint observability: an in-flight
// gauge, a latency histogram (resolved once, at wrap time), and a request
// counter labeled with endpoint and status code.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	hist := s.reg.Histogram("comparesets_http_request_duration_seconds",
		"HTTP request latency by endpoint.", nil, obs.Labels{"endpoint": endpoint})
	inflight := s.reg.Gauge("comparesets_http_inflight_requests",
		"Requests currently being served.", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		inflight.Add(-1)
		hist.ObserveDuration(time.Since(start))
		s.reg.Counter("comparesets_http_requests_total",
			"HTTP requests by endpoint and status code.",
			obs.Labels{"endpoint": endpoint, "code": strconv.Itoa(rec.status)}).Inc()
	})
}
