package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"comparesets/internal/faultinject"
	"comparesets/internal/obs"
	"comparesets/internal/servecache"
)

// API error codes used in the error envelope.
const (
	// CodeBadRequest marks malformed requests: unparseable JSON or a body
	// missing a required combination of fields (HTTP 400).
	CodeBadRequest = "bad_request"
	// CodeNotFound marks references to unknown resources: categories or
	// target products not loaded on this server (HTTP 404).
	CodeNotFound = "not_found"
	// CodeUnprocessable marks well-formed requests with semantically
	// invalid values: unknown algorithms or methods, invalid
	// hyperparameters, inconsistent inline instances (HTTP 422).
	CodeUnprocessable = "unprocessable"
	// CodeDeadlineExceeded marks requests that ran out of their timeout_ms
	// budget (HTTP 504).
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeClientClosed marks requests whose client disconnected before the
	// response was ready (HTTP 499, the de-facto "client closed request"
	// status). Distinguishing it keeps client aborts out of the 5xx error
	// budget in metrics.
	CodeClientClosed = "client_closed"
	// CodeOverloaded marks requests shed by admission control; the
	// response carries a Retry-After header (HTTP 503).
	CodeOverloaded = "overloaded"
	// CodeInternal marks handler panics and injected/internal pipeline
	// failures (HTTP 500). The envelope message is generic; details go to
	// the server log only.
	CodeInternal = "internal"
)

// StatusClientClosedRequest is nginx's non-standard 499: the client went
// away before the response. Used as a metrics status class, never actually
// received by anyone.
const StatusClientClosedRequest = 499

// ErrorBody is the machine-readable error payload. Field names the request
// field a validation error is about (empty for errors not tied to one
// field), so clients can surface the failure next to the offending input.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

// ErrorResponse is the envelope every non-2xx response carries:
// {"error":{"code":"...","message":"..."}}.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// apiError couples an HTTP status and a stable code with the underlying
// error; handlers return it and a single writer renders the envelope.
type apiError struct {
	status int
	code   string
	err    error
	// public, when set, replaces err.Error() in the envelope — used to keep
	// internal failure details (panic values, injected faults) out of
	// client responses.
	public string
	// retryAfter > 0 emits a Retry-After header with that many seconds.
	retryAfter int
	// field names the offending request field for validation errors.
	field string
}

func (e *apiError) Error() string { return e.err.Error() }
func (e *apiError) Unwrap() error { return e.err }

// message is what the envelope carries.
func (e *apiError) message() string {
	if e.public != "" {
		return e.public
	}
	return e.err.Error()
}

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: CodeBadRequest, err: fmt.Errorf(format, args...)}
}

func notFound(format string, args ...any) *apiError {
	return &apiError{status: http.StatusNotFound, code: CodeNotFound, err: fmt.Errorf(format, args...)}
}

func unprocessable(err error) *apiError {
	return &apiError{status: http.StatusUnprocessableEntity, code: CodeUnprocessable, err: err}
}

// fieldError is unprocessable tied to one named request field: the envelope
// carries {"error":{"code":"unprocessable","message":...,"field":...}}.
func fieldError(field, format string, args ...any) *apiError {
	return &apiError{
		status: http.StatusUnprocessableEntity, code: CodeUnprocessable,
		err: fmt.Errorf(format, args...), field: field,
	}
}

func internalError(err error) *apiError {
	return &apiError{
		status: http.StatusInternalServerError, code: CodeInternal,
		err: err, public: "internal server error",
	}
}

// asAPIError normalizes any handler error into an apiError: injected
// faults and flight panics map to 500/internal, deadline expiry to
// 504/deadline_exceeded, client disconnects to 499/client_closed, and
// everything else to 422 (the request parsed but could not be served as
// stated).
func asAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	var pe *servecache.PanicError
	if errors.As(err, &pe) || errors.Is(err, faultinject.ErrInjected) {
		return internalError(err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &apiError{status: http.StatusGatewayTimeout, code: CodeDeadlineExceeded, err: err}
	}
	if errors.Is(err, context.Canceled) {
		return &apiError{status: StatusClientClosedRequest, code: CodeClientClosed, err: err}
	}
	return unprocessable(err)
}

// statusRecorder captures the status code written by a handler so the
// middleware can label the request counter with it, and whether a header
// was written at all so panic recovery knows if the envelope can still be
// sent.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.wrote = true
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with per-endpoint observability and panic
// containment: an in-flight gauge, a latency histogram (resolved once, at
// wrap time), a request counter labeled with endpoint and status code, and
// a recover that converts a panicking handler into a 500 error envelope
// (stack to the log, comparesets_http_panics_total incremented) so one bad
// request can never take the process down.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	hist := s.reg.Histogram("comparesets_http_request_duration_seconds",
		"HTTP request latency by endpoint.", nil, obs.Labels{"endpoint": endpoint})
	inflight := s.reg.Gauge("comparesets_http_inflight_requests",
		"Requests currently being served.", nil)
	panics := s.reg.Counter("comparesets_http_panics_total",
		"Handler panics recovered by the middleware.", obs.Labels{"endpoint": endpoint})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				panics.Inc()
				s.logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if !rec.wrote {
					s.writeAPIError(rec, internalError(fmt.Errorf("panic: %v", p)))
				}
			}
			inflight.Add(-1)
			hist.ObserveDuration(time.Since(start))
			s.reg.Counter("comparesets_http_requests_total",
				"HTTP requests by endpoint and status code.",
				obs.Labels{"endpoint": endpoint, "code": strconv.Itoa(rec.status)}).Inc()
		}()
		if err := faultinject.Check(faultinject.PointServiceHandler); err != nil {
			s.writeAPIError(rec, asAPIError(err))
			return
		}
		h(rec, r)
	})
}
