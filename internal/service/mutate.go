// Incremental corpus mutation: the delta write path.
//
// Before this API existed, the only write was AddCorpus — a whole-epoch
// flush that rebuilt every feature slab, dropped every cached problem, and
// invalidated every cached response of the category, even for a single new
// review. The mutation endpoints thread a typed delta through each layer
// instead:
//
//	model      copy-on-write item replacement (untouched items keep their
//	           pointers, so pointer-keyed caches stay warm)
//	store      one log-append record (no rewrite) when a MutationLog is
//	           configured, written before the in-memory swap
//	featstore  per-item column refill reusing every unchanged review column
//	core       ProblemCache.InvalidateItem drops only the touched item's
//	           regression problems
//	simgraph   memoized builders recompute only rows whose item stats
//	           changed (see memoGraph)
//	servecache per-item generations fold into the select cache key, so only
//	           cached responses whose instance contains the touched item
//	           become unreachable
//
// Each mutation returns a MutationReceipt describing exactly what was
// invalidated, so callers can audit the blast radius of a write.
package service

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/fnv"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"comparesets/internal/core"
	"comparesets/internal/model"
	"comparesets/internal/obs"
	"comparesets/internal/simgraph"
)

// MutationReceipt is the response body of every mutation endpoint: what
// changed, the epoch coordinates now governing the touched item, and the
// exact invalidation work the delta caused.
type MutationReceipt struct {
	// Kind is "append", "update", or "remove".
	Kind     string `json:"kind"`
	Category string `json:"category"`
	Item     string `json:"item"`
	// Reviews lists the review IDs the mutation touched.
	Reviews []string `json:"reviews"`
	// Epoch is the category's base epoch token (unchanged by mutations —
	// only AddCorpus bumps it); Generation is the touched item's mutation
	// generation within that epoch. Together they identify the item's cache
	// lineage: cached selections over instances containing the item are
	// keyed under (epoch, generation) and became unreachable.
	Epoch      string `json:"epoch"`
	Generation uint64 `json:"generation"`
	// AffectedItems lists the items whose cached artifacts were invalidated
	// (the touched item; instances containing it re-key automatically).
	AffectedItems []string          `json:"affected_items"`
	Invalidation  InvalidationScope `json:"invalidation"`
	ElapsedMS     float64           `json:"elapsed_ms"`
}

// InvalidationScope quantifies a mutation's cache blast radius.
type InvalidationScope struct {
	// Scope is "item" for mutations; AddCorpus invalidations are "epoch".
	Scope string `json:"scope"`
	// ProblemsDropped counts regression problems of the old item snapshot
	// removed from the category's ProblemCache.
	ProblemsDropped int `json:"problems_dropped"`
	// ColumnsComputed / ColumnsReused count feature columns rebuilt fresh
	// vs copied from the previous snapshot during the featstore refill.
	ColumnsComputed int `json:"columns_computed"`
	ColumnsReused   int `json:"columns_reused"`
}

// mutationError maps model mutation failures onto the API error envelope:
// unknown references are 404s, validation failures are 422s naming the
// offending field.
func mutationError(err error) *apiError {
	switch {
	case errors.Is(err, model.ErrUnknownItem), errors.Is(err, model.ErrUnknownReview):
		return notFound("%v", err)
	case errors.Is(err, model.ErrEmptyReviewID), errors.Is(err, model.ErrDuplicateReview):
		return fieldError("id", "%v", err)
	case errors.Is(err, model.ErrItemMismatch):
		return fieldError("item_id", "%v", err)
	case errors.Is(err, model.ErrBadAspect), errors.Is(err, model.ErrBadPolarity):
		return fieldError("mentions", "%v", err)
	default:
		return unprocessable(err)
	}
}

// applyMutation runs one corpus delta end to end under the write lock:
// clone, mutate, WAL-append (log first — a mutation that cannot be made
// durable is not applied), swap, bump the item generation, refill the
// touched feature columns, and drop the old snapshot's problems. The
// receipt reports what happened.
func (s *Server) applyMutation(category, kind string, mutate func(c *model.Corpus) (*model.Mutation, error)) (*MutationReceipt, *apiError) {
	start := time.Now()
	span := obs.StartStage(obs.StageMutateApply)
	s.mu.Lock()
	c, ok := s.corpora[category]
	if !ok {
		s.mu.Unlock()
		span.Stop()
		return nil, notFound("unknown category %q", category)
	}
	next := c.Clone()
	m, err := mutate(next)
	if err != nil {
		s.mu.Unlock()
		span.Stop()
		return nil, mutationError(err)
	}
	if s.mutlog != nil {
		if lerr := s.mutlog.AppendMutation(m); lerr != nil {
			// Write-ahead ordering: the in-memory state is untouched (the
			// mutated clone is discarded), so memory and log stay consistent.
			s.mu.Unlock()
			span.Stop()
			return nil, internalError(lerr)
		}
	}
	s.corpora[category] = next
	gens := s.gens[category]
	if gens == nil {
		gens = map[string]uint64{}
		s.gens[category] = gens
	}
	gens[m.ItemID]++
	gen := gens[m.ItemID]
	computed, reused := s.feats[category].Apply(next, m)
	dropped := s.problems[category].InvalidateItem(m.Old)
	epoch := s.epochs[category]
	s.mu.Unlock()
	span.Stop()

	s.reg.Counter("comparesets_mutations_total",
		"Corpus mutations applied, by kind.", obs.Labels{"kind": kind}).Inc()
	s.reg.Counter("comparesets_invalidations_total",
		"Cache invalidations by scope: item (mutation) or epoch (corpus replace).",
		obs.Labels{"scope": "item"}).Inc()

	return &MutationReceipt{
		Kind:          kind,
		Category:      category,
		Item:          m.ItemID,
		Reviews:       m.ReviewIDs,
		Epoch:         epoch,
		Generation:    gen,
		AffectedItems: []string{m.ItemID},
		Invalidation: InvalidationScope{
			Scope:           "item",
			ProblemsDropped: dropped,
			ColumnsComputed: computed,
			ColumnsReused:   reused,
		},
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}, nil
}

// AppendReviewsBody is the POST .../reviews request body.
type AppendReviewsBody struct {
	Reviews []*model.Review `json:"reviews"`
}

// handleAppendReviews serves
// POST /api/v1/corpora/{category}/items/{item}/reviews.
func (s *Server) handleAppendReviews(w http.ResponseWriter, r *http.Request) {
	category, item := r.PathValue("category"), r.PathValue("item")
	var body AppendReviewsBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.writeAPIError(w, badRequest("decoding request: %v", err))
		return
	}
	if len(body.Reviews) == 0 {
		s.writeAPIError(w, fieldError("reviews", "at least one review is required"))
		return
	}
	receipt, ae := s.applyMutation(category, "append", func(c *model.Corpus) (*model.Mutation, error) {
		return c.AppendReviews(item, body.Reviews...)
	})
	if ae != nil {
		s.writeAPIError(w, ae)
		return
	}
	s.writeJSON(w, http.StatusOK, receipt)
}

// handleUpdateReview serves
// PATCH /api/v1/corpora/{category}/items/{item}/reviews/{review}. The body
// is the replacement review; its id, when present, must match the path.
func (s *Server) handleUpdateReview(w http.ResponseWriter, r *http.Request) {
	category, item, review := r.PathValue("category"), r.PathValue("item"), r.PathValue("review")
	var rev model.Review
	if err := json.NewDecoder(r.Body).Decode(&rev); err != nil {
		s.writeAPIError(w, badRequest("decoding request: %v", err))
		return
	}
	if rev.ID == "" {
		rev.ID = review
	}
	if rev.ID != review {
		s.writeAPIError(w, fieldError("id", "body review id %q does not match path id %q", rev.ID, review))
		return
	}
	receipt, ae := s.applyMutation(category, "update", func(c *model.Corpus) (*model.Mutation, error) {
		return c.UpdateReview(item, &rev)
	})
	if ae != nil {
		s.writeAPIError(w, ae)
		return
	}
	s.writeJSON(w, http.StatusOK, receipt)
}

// handleRemoveReview serves
// DELETE /api/v1/corpora/{category}/items/{item}/reviews/{review}.
func (s *Server) handleRemoveReview(w http.ResponseWriter, r *http.Request) {
	category, item, review := r.PathValue("category"), r.PathValue("item"), r.PathValue("review")
	receipt, ae := s.applyMutation(category, "remove", func(c *model.Corpus) (*model.Mutation, error) {
		return c.RemoveReview(item, review)
	})
	if ae != nil {
		s.writeAPIError(w, ae)
		return
	}
	s.writeJSON(w, http.StatusOK, receipt)
}

// instanceEpoch derives the cache-key epoch of one request from the
// category's base epoch and the mutation generations of exactly the
// instance's member items. Instances containing no mutated item keep the
// bare base token — their cached responses survive every mutation of other
// items — while any member generation change re-keys (and thereby
// invalidates) the instance's cached selections.
func instanceEpoch(base string, gens map[string]uint64, inst *model.Instance) string {
	if len(gens) == 0 {
		return base
	}
	h := fnv.New64a()
	touched := false
	var buf [8]byte
	for _, it := range inst.Items {
		if g := gens[it.ID]; g > 0 {
			touched = true
			h.Write([]byte(it.ID))
			binary.BigEndian.PutUint64(buf[:], g)
			h.Write(buf[:])
		}
	}
	if !touched {
		return base
	}
	return base + "." + strconv.FormatUint(h.Sum64(), 16)
}

// maxGraphEntries bounds the graph memo; on overflow the map resets (same
// pure-accelerator policy as core.ProblemCache).
const maxGraphEntries = 256

// graphMemo holds one incremental similarity-graph builder per select
// shape (epoch-less select key). A mutation does not drop entries: the
// next request with the same shape diffs its fresh per-item stats against
// the memoized ones and recomputes only the changed rows, which is the
// whole point — the O(n²·z) pairwise pass shrinks to O(n·z) for a
// single-item delta. Entries are dropped only on corpus replacement, when
// instance membership itself may change.
type graphMemo struct {
	mu sync.Mutex
	m  map[string]*graphEntry
}

type graphEntry struct {
	mu       sync.Mutex
	category string
	builder  *simgraph.Builder
	stats    []core.ItemStats
}

// entry returns the memo slot for the key, creating it if needed.
func (gm *graphMemo) entry(category, key string) *graphEntry {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	e, ok := gm.m[key]
	if !ok {
		if len(gm.m) >= maxGraphEntries {
			gm.m = map[string]*graphEntry{}
		}
		e = &graphEntry{category: category}
		gm.m[key] = e
	}
	return e
}

// dropCategory removes every memo entry of the category.
func (gm *graphMemo) dropCategory(category string) {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	for k, e := range gm.m {
		if e.category == category {
			delete(gm.m, k)
		}
	}
}

// memoGraph builds the similarity graph for the request's selection stats.
// With a graph key (corpus-referenced cached requests), the distance matrix
// is memoized per select shape and only rows whose item stats changed since
// the previous request are recomputed; the result is byte-identical to a
// fresh simgraph.Build (see simgraph.Builder). Without a key (inline
// instances, cache disabled), it is exactly a fresh Build.
func (s *Server) memoGraph(graphKey, category string, stats []core.ItemStats, cfg core.Config) *simgraph.Graph {
	if graphKey == "" {
		return simgraph.Build(stats, cfg)
	}
	e := s.graphs.entry(category, graphKey)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.builder == nil || len(e.stats) != len(stats) {
		e.builder = simgraph.NewBuilder(stats, cfg)
		e.stats = stats
		return e.builder.Graph()
	}
	var touched []int
	for i := range stats {
		if !statsEqual(&e.stats[i], &stats[i]) {
			touched = append(touched, i)
		}
	}
	if len(touched) > 0 {
		e.builder.Update(stats, touched)
	}
	e.stats = stats
	return e.builder.Graph()
}

// statsEqual compares two items' selection statistics bitwise — the
// distance d_ij is a pure function of the two entries, so bit equality of
// the entries guarantees bit equality of every incident edge.
func statsEqual(a, b *core.ItemStats) bool {
	if math.Float64bits(a.OpinionLoss) != math.Float64bits(b.OpinionLoss) ||
		math.Float64bits(a.AspectLoss) != math.Float64bits(b.AspectLoss) ||
		len(a.Phi) != len(b.Phi) {
		return false
	}
	for k := range a.Phi {
		if math.Float64bits(a.Phi[k]) != math.Float64bits(b.Phi[k]) {
			return false
		}
	}
	return true
}
