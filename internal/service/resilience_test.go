package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"comparesets/internal/core"
	"comparesets/internal/faultinject"
	"comparesets/internal/model"
	"comparesets/internal/obs"
	"comparesets/internal/simgraph"
)

// counterValue reads a registry counter without caring about help text
// (the registry keys on name+labels).
func counterValue(s *Server, name string, labels obs.Labels) uint64 {
	return s.reg.Counter(name, "", labels).Value()
}

func decodeSelect(t *testing.T, body []byte) *SelectResponse {
	t.Helper()
	var resp SelectResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding select response: %v (body %s)", err, body)
	}
	return &resp
}

func decodeErrorEnvelope(t *testing.T, body []byte) ErrorBody {
	t.Helper()
	var env ErrorResponse
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("decoding error envelope: %v (body %s)", err, body)
	}
	return env.Error
}

// TestHandlerPanicContained proves a panicking handler yields a 500 error
// envelope, increments the panic counter, and leaves the process able to
// serve the next request.
func TestHandlerPanicContained(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	c := cellphoneCorpus(t, 3)
	s := New(map[string]*model.Corpus{"Cellphone": c}, nil)
	h := s.Handler()
	req := hotRequest(t, s)

	before := counterValue(s, "comparesets_http_panics_total", obs.Labels{"endpoint": "select"})
	faultinject.Arm(faultinject.PointServiceHandler,
		faultinject.Fault{Mode: faultinject.ModePanic, PanicValue: "boom", Remaining: 1})
	w := postRecorded(t, h, "/api/v1/select", req)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", w.Code, w.Body.String())
	}
	e := decodeErrorEnvelope(t, w.Body.Bytes())
	if e.Code != CodeInternal || e.Message != "internal server error" {
		t.Errorf("envelope = %+v, want code %q with generic message", e, CodeInternal)
	}
	if strings.Contains(w.Body.String(), "boom") {
		t.Errorf("panic value leaked into the response: %s", w.Body.String())
	}
	if got := counterValue(s, "comparesets_http_panics_total", obs.Labels{"endpoint": "select"}); got != before+1 {
		t.Errorf("panics_total delta = %d, want 1", got-before)
	}
	// The process survived: the same request now succeeds.
	if w := postRecorded(t, h, "/api/v1/select", req); w.Code != http.StatusOK {
		t.Fatalf("post-panic request: status %d body %s", w.Code, w.Body.String())
	}
}

// TestFlightPanicContained proves a panic inside a coalesced flight
// surfaces as a 500 envelope (via servecache.PanicError) rather than
// killing the process, and is counted.
func TestFlightPanicContained(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	c := cellphoneCorpus(t, 3)
	s := New(map[string]*model.Corpus{"Cellphone": c}, nil)
	h := s.Handler()
	req := hotRequest(t, s)

	before := s.flightPanics.Value()
	faultinject.Arm(faultinject.PointServiceSelect,
		faultinject.Fault{Mode: faultinject.ModePanic, Remaining: 1})
	w := postRecorded(t, h, "/api/v1/select", req)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", w.Code, w.Body.String())
	}
	if e := decodeErrorEnvelope(t, w.Body.Bytes()); e.Code != CodeInternal {
		t.Errorf("envelope code = %q, want %q", e.Code, CodeInternal)
	}
	if got := s.flightPanics.Value(); got != before+1 {
		t.Errorf("flight panic counter delta = %d, want 1", got-before)
	}
	if w := postRecorded(t, h, "/api/v1/select", req); w.Code != http.StatusOK {
		t.Fatalf("post-panic request: status %d body %s", w.Code, w.Body.String())
	}
}

// TestAdmissionControlSheds proves a saturated limiter sheds with 503, the
// overloaded error code, a Retry-After hint, and a shed counter — and that
// releasing the slot restores service.
func TestAdmissionControlSheds(t *testing.T) {
	c := cellphoneCorpus(t, 3)
	s := NewWithOptions(map[string]*model.Corpus{"Cellphone": c}, nil,
		Options{MaxInflight: 1, MaxQueue: -1})
	h := s.Handler()
	req := hotRequest(t, s)

	release, aerr := s.limiter.acquire(context.Background())
	if aerr != nil {
		t.Fatalf("acquire: %v", aerr)
	}
	before := counterValue(s, "comparesets_load_shed_total", obs.Labels{"reason": "queue_full"})
	w := postRecorded(t, h, "/api/v1/select", req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", w.Code, w.Body.String())
	}
	if e := decodeErrorEnvelope(t, w.Body.Bytes()); e.Code != CodeOverloaded {
		t.Errorf("envelope code = %q, want %q", e.Code, CodeOverloaded)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want ≥ 1 second", ra)
	}
	if got := counterValue(s, "comparesets_load_shed_total", obs.Labels{"reason": "queue_full"}); got != before+1 {
		t.Errorf("load_shed_total{queue_full} delta = %d, want 1", got-before)
	}

	release()
	if w := postRecorded(t, h, "/api/v1/select", req); w.Code != http.StatusOK {
		t.Fatalf("post-release request: status %d body %s", w.Code, w.Body.String())
	}
}

// TestLimiterDeadlineShed proves the limiter sheds a queued request whose
// deadline cannot outlast the expected wait, without consuming queue time.
func TestLimiterDeadlineShed(t *testing.T) {
	l := newLimiter(1, 4, obs.Default())
	release, aerr := l.acquire(context.Background())
	if aerr != nil {
		t.Fatalf("first acquire: %v", aerr)
	}
	defer release()
	// Expected wait is the 50ms EWMA seed; a 5ms deadline can't make it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, aerr := l.acquire(ctx); aerr == nil || aerr.code != CodeOverloaded {
		t.Fatalf("aerr = %+v, want overloaded", aerr)
	}
}

// TestLimiterQueueWaits proves a queued request is admitted when a slot
// frees up, and that release is idempotent.
func TestLimiterQueueWaits(t *testing.T) {
	l := newLimiter(1, 4, obs.Default())
	release, aerr := l.acquire(context.Background())
	if aerr != nil {
		t.Fatalf("first acquire: %v", aerr)
	}
	done := make(chan *apiError, 1)
	go func() {
		r2, aerr := l.acquire(context.Background())
		if aerr == nil {
			r2()
		}
		done <- aerr
	}()
	time.Sleep(10 * time.Millisecond)
	release()
	release() // second call must be a no-op, not a double slot return
	if aerr := <-done; aerr != nil {
		t.Fatalf("queued acquire: %v", aerr)
	}
	if len(l.slots) != l.capacity {
		t.Errorf("slots free = %d, want %d", len(l.slots), l.capacity)
	}
}

// TestStaleWhileError proves a pipeline failure on a previously served
// request shape answers with the last good payload, flagged degraded, and
// counts the degraded response.
func TestStaleWhileError(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	c := cellphoneCorpus(t, 3)
	s := New(map[string]*model.Corpus{"Cellphone": c}, nil)
	h := s.Handler()
	req := hotRequest(t, s)

	cold := postRecorded(t, h, "/api/v1/select", req)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold: status %d body %s", cold.Code, cold.Body.String())
	}
	// Epoch bump invalidates the primary cache so the next request must
	// run the (now failing) pipeline; the stale copy is keyed without the
	// epoch and survives.
	s.AddCorpus("Cellphone", c)
	faultinject.Arm(faultinject.PointServiceSelect,
		faultinject.Fault{Mode: faultinject.ModeError})

	before := s.staleServed.Value()
	w := postRecorded(t, h, "/api/v1/select", req)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded: status %d body %s", w.Code, w.Body.String())
	}
	resp := decodeSelect(t, w.Body.Bytes())
	if !resp.Degraded {
		t.Fatalf("degraded flag missing: %s", w.Body.String())
	}
	if want := degradeBody(cold.Body.Bytes()); !bytes.Equal(w.Body.Bytes(), want) {
		t.Errorf("degraded body is not the flagged cold payload\ngot  %s\nwant %s", w.Body.Bytes(), want)
	}
	if got := s.staleServed.Value(); got != before+1 {
		t.Errorf("degraded_responses_total delta = %d, want 1", got-before)
	}

	// With the fault cleared the pipeline recovers and serves fresh,
	// unflagged results again.
	faultinject.Reset()
	w = postRecorded(t, h, "/api/v1/select", req)
	if w.Code != http.StatusOK || strings.Contains(w.Body.String(), `"degraded"`) {
		t.Fatalf("recovered: status %d body %s", w.Code, w.Body.String())
	}
}

// TestStaleWhileErrorColdKeyFails proves stale serving never invents data:
// a failing pipeline on a never-served shape is a plain 500.
func TestStaleWhileErrorColdKeyFails(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	c := cellphoneCorpus(t, 3)
	s := New(map[string]*model.Corpus{"Cellphone": c}, nil)
	h := s.Handler()
	req := hotRequest(t, s)

	faultinject.Arm(faultinject.PointServiceSelect,
		faultinject.Fault{Mode: faultinject.ModeError})
	w := postRecorded(t, h, "/api/v1/select", req)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", w.Code, w.Body.String())
	}
	if e := decodeErrorEnvelope(t, w.Body.Bytes()); e.Code != CodeInternal {
		t.Errorf("envelope code = %q, want %q", e.Code, CodeInternal)
	}
}

// computeDirect runs computeSelect outside the HTTP layer so tests can
// control the context and limiter state exactly.
func computeDirect(t *testing.T, s *Server, ctx context.Context, req *SelectRequest, solver simgraph.Solver) *SelectResponse {
	t.Helper()
	s.mu.RLock()
	c := s.corpora[req.Category]
	fs := s.feats[req.Category]
	s.mu.RUnlock()
	inst, err := c.NewInstance(req.Target, req.MaxComparative)
	if err != nil {
		t.Fatal(err)
	}
	algo := req.Algorithm
	if algo == "" {
		algo = "CompaReSetS+"
	}
	sel, ok := core.SelectorByName(algo)
	if !ok {
		t.Fatalf("unknown algorithm %q", algo)
	}
	resp, apiErr := s.computeSelect(ctx, req, inst, fs, sel, solver, nil, "")
	if apiErr != nil {
		t.Fatalf("computeSelect: %v", apiErr)
	}
	return resp
}

// TestShortlistDegradationLadder proves the exact solver is shed to greedy
// under queue pressure, insufficient deadline headroom, and internal
// budget exhaustion — each marked optimal:false with the matching
// fallback-counter reason — while unpressured exact solves stay optimal.
func TestShortlistDegradationLadder(t *testing.T) {
	c := cellphoneCorpus(t, 3)
	s := NewWithOptions(map[string]*model.Corpus{"Cellphone": c}, nil,
		Options{MaxInflight: 1, CacheDisabled: true})
	req := hotRequest(t, s)
	req.Method = "exact"

	fallback := func(reason string) uint64 {
		return counterValue(s, "comparesets_shortlist_fallback_total", obs.Labels{"reason": reason})
	}
	assertShed := func(t *testing.T, resp *SelectResponse) {
		t.Helper()
		if resp.Optimal == nil || *resp.Optimal {
			t.Errorf("Optimal = %v, want false", resp.Optimal)
		}
		if len(resp.Shortlist) != req.K {
			t.Errorf("shortlist len = %d, want %d (fallback must still answer)", len(resp.Shortlist), req.K)
		}
	}

	t.Run("overload", func(t *testing.T) {
		// Simulate queue pressure: slot taken, a request waiting.
		<-s.limiter.slots
		s.limiter.queued.Add(1)
		defer func() {
			s.limiter.queued.Add(-1)
			s.limiter.slots <- struct{}{}
		}()
		before := fallback("overload")
		resp := computeDirect(t, s, context.Background(), &req, simgraph.Exact{Budget: 10 * time.Second})
		assertShed(t, resp)
		if got := fallback("overload"); got != before+1 {
			t.Errorf("fallback{overload} delta = %d, want 1", got-before)
		}
	})

	t.Run("deadline", func(t *testing.T) {
		// Headroom below exactMinHeadroom at shortlist time: the deadline
		// is generous enough for selection but too tight for exact B&B.
		ctx, cancel := context.WithTimeout(context.Background(), exactMinHeadroom-5*time.Millisecond)
		defer cancel()
		before := fallback("deadline")
		resp := computeDirect(t, s, ctx, &req, simgraph.Exact{Budget: 10 * time.Second})
		assertShed(t, resp)
		if got := fallback("deadline"); got != before+1 {
			t.Errorf("fallback{deadline} delta = %d, want 1", got-before)
		}
	})

	t.Run("budget", func(t *testing.T) {
		before := fallback("budget")
		resp := computeDirect(t, s, context.Background(), &req, simgraph.Exact{Budget: time.Nanosecond})
		assertShed(t, resp)
		if got := fallback("budget"); got != before+1 {
			t.Errorf("fallback{budget} delta = %d, want 1", got-before)
		}
	})

	t.Run("unpressured stays optimal", func(t *testing.T) {
		resp := computeDirect(t, s, context.Background(), &req, simgraph.Exact{Budget: 10 * time.Second})
		if resp.Optimal != nil {
			t.Errorf("Optimal = %v, want omitted for a completed exact solve", *resp.Optimal)
		}
	})
}

// TestFallbackResultsNotCached proves a degraded shortlist result is never
// cached: once pressure clears, the same request recomputes optimally.
func TestFallbackResultsNotCached(t *testing.T) {
	c := cellphoneCorpus(t, 3)
	s := NewWithOptions(map[string]*model.Corpus{"Cellphone": c}, nil,
		Options{MaxInflight: 2})
	h := s.Handler()
	req := hotRequest(t, s)
	req.Method = "exact"

	// Pressure on: the e2e request sheds the exact solve.
	<-s.limiter.slots
	s.limiter.queued.Add(1)
	w := postRecorded(t, h, "/api/v1/select", req)
	s.limiter.queued.Add(-1)
	s.limiter.slots <- struct{}{}
	if w.Code != http.StatusOK {
		t.Fatalf("pressured: status %d body %s", w.Code, w.Body.String())
	}
	if resp := decodeSelect(t, w.Body.Bytes()); resp.Optimal == nil || *resp.Optimal {
		t.Fatalf("pressured response not marked optimal:false: %s", w.Body.String())
	}

	// Pressure off: the identical request must NOT come from the cache
	// (which would replay the degraded result) but re-solve optimally.
	w = postRecorded(t, h, "/api/v1/select", req)
	if w.Code != http.StatusOK {
		t.Fatalf("unpressured: status %d body %s", w.Code, w.Body.String())
	}
	if resp := decodeSelect(t, w.Body.Bytes()); resp.Optimal != nil {
		t.Errorf("degraded result was cached and replayed: %s", w.Body.String())
	}
}

// TestReadyzStates walks the readiness state machine end to end.
func TestReadyzStates(t *testing.T) {
	c := cellphoneCorpus(t, 3)
	probeErr := error(nil)
	s := NewWithOptions(map[string]*model.Corpus{"Cellphone": c}, nil,
		Options{StoreProbe: func() error { return probeErr }})
	h := s.Handler()

	readyz := func() (int, map[string]any, http.Header) {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		var body map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatalf("readyz body: %v (%s)", err, w.Body.String())
		}
		return w.Code, body, w.Header()
	}

	code, body, _ := readyz()
	if code != http.StatusOK || body["status"] != ReadyOK {
		t.Errorf("healthy: code %d status %v", code, body["status"])
	}

	probeErr = errors.New("disk on fire")
	code, body, _ = readyz()
	if code != http.StatusOK || body["status"] != ReadyDegraded {
		t.Errorf("store down: code %d status %v, want 200 degraded", code, body["status"])
	}
	probeErr = nil

	s.SetDraining(true)
	code, body, hdr := readyz()
	if code != http.StatusServiceUnavailable || body["status"] != ReadyOverloaded {
		t.Errorf("draining: code %d status %v, want 503 overloaded", code, body["status"])
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining: missing Retry-After")
	}
	s.SetDraining(false)

	empty := New(nil, nil)
	w := httptest.NewRecorder()
	empty.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("no corpora: code %d, want 503", w.Code)
	}
}

// abortWriter fails every write, simulating a client that disconnected
// mid-response.
type abortWriter struct{ h http.Header }

func (w *abortWriter) Header() http.Header {
	if w.h == nil {
		w.h = http.Header{}
	}
	return w.h
}
func (w *abortWriter) WriteHeader(int)           {}
func (w *abortWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

// TestClientAbortCounted proves failed response writes are counted as
// client aborts rather than ignored.
func TestClientAbortCounted(t *testing.T) {
	s := New(nil, nil)
	before := s.clientAborts.Value()
	s.writeJSON(&abortWriter{}, http.StatusOK, map[string]string{"a": "b"})
	s.writeRawJSON(&abortWriter{}, []byte("{}\n"))
	if got := s.clientAborts.Value(); got != before+2 {
		t.Errorf("client_aborts_total delta = %d, want 2", got-before)
	}
}

// TestUninjectedByteParity proves the resilience features are invisible
// when nothing is injected or shed: a server with admission control and a
// store probe serves byte-identical responses to a plain server, with no
// degraded/optimal keys anywhere.
func TestUninjectedByteParity(t *testing.T) {
	c := cellphoneCorpus(t, 3)
	plain := New(map[string]*model.Corpus{"Cellphone": c}, nil)
	hardened := NewWithOptions(map[string]*model.Corpus{"Cellphone": c}, nil,
		Options{MaxInflight: 8, StoreProbe: func() error { return nil }})
	req := hotRequest(t, plain)
	req.Method = "exact"

	wp := postRecorded(t, plain.Handler(), "/api/v1/select", req)
	wh := postRecorded(t, hardened.Handler(), "/api/v1/select", req)
	if wp.Code != http.StatusOK || wh.Code != http.StatusOK {
		t.Fatalf("status plain %d hardened %d", wp.Code, wh.Code)
	}
	// Cross-server comparison must ignore the wall-clock elapsed_ms field;
	// everything else must match exactly.
	rp, rh := decodeSelect(t, wp.Body.Bytes()), decodeSelect(t, wh.Body.Bytes())
	rp.ElapsedMS, rh.ElapsedMS = 0, 0
	jp, _ := json.Marshal(rp)
	jh, _ := json.Marshal(rh)
	if !bytes.Equal(jp, jh) {
		t.Errorf("hardened server response differs from plain server\nplain    %s\nhardened %s", jp, jh)
	}
	for _, key := range []string{`"degraded"`, `"optimal"`} {
		if strings.Contains(wp.Body.String(), key) {
			t.Errorf("uninjected response contains %s: %s", key, wp.Body.String())
		}
	}
	// Warm (cached) and coalesced replies reuse the cold bytes verbatim —
	// covered by TestWarmHitReturnsIdenticalBytes; here assert the warm
	// path of the hardened server too.
	warm := postRecorded(t, hardened.Handler(), "/api/v1/select", req)
	if !bytes.Equal(warm.Body.Bytes(), wh.Body.Bytes()) {
		t.Error("hardened warm response differs from its cold response")
	}
}

// TestChaos hammers a hardened server with probabilistic faults armed at
// every injection point. It runs only when FAULTINJECT opts the process in
// (CI's chaos job, or `make chaos`). Every response must be a well-formed
// JSON envelope or result, and the process must survive all of it.
func TestChaos(t *testing.T) {
	if !faultinject.EnvEnabled() {
		t.Skip("set FAULTINJECT=1 to run the chaos suite")
	}
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	t.Logf("chaos seed: FAULTINJECT_SEED=%d", faultinject.CurrentSeed())

	c := cellphoneCorpus(t, 3)
	s := NewWithOptions(map[string]*model.Corpus{"Cellphone": c}, nil,
		Options{MaxInflight: 4, StoreProbe: func() error { return nil }})
	h := s.Handler()
	req := hotRequest(t, s)

	spec := strings.Join([]string{
		"service.handler=panic@0.05",
		"service.select=error@0.2",
		"core.select=error@0.1",
		"featstore.fill=error@0.3",
		"core.select=latency:2ms@0.2",
	}, ",")
	// Later entries for the same point overwrite earlier ones; keep the
	// spec's last core.select mode (latency) plus the rest.
	if err := faultinject.ArmSpec(spec); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 200; i++ {
		w := postRecorded(t, h, "/api/v1/select", req)
		switch {
		case w.Code == http.StatusOK:
			decodeSelect(t, w.Body.Bytes())
		case w.Code >= 400:
			if e := decodeErrorEnvelope(t, w.Body.Bytes()); e.Code == "" {
				t.Fatalf("request %d: %d with malformed envelope %s", i, w.Code, w.Body.String())
			}
		default:
			t.Fatalf("request %d: unexpected status %d", i, w.Code)
		}
	}
	faultinject.Reset()
	if w := postRecorded(t, h, "/api/v1/select", req); w.Code != http.StatusOK {
		t.Fatalf("post-chaos request: status %d body %s", w.Code, w.Body.String())
	}
}
