package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"comparesets/internal/dataset"
	"comparesets/internal/model"
)

// benchServer builds a handler over a synthetic corpus; the driver posts
// directly (no sockets) so the numbers isolate the serving path itself.
func benchServer(b *testing.B, opts Options) (*Server, http.Handler, SelectRequest) {
	b.Helper()
	c := cellphoneCorpus(b, 3)
	s := NewWithOptions(map[string]*model.Corpus{"Cellphone": c}, nil, opts)
	return s, s.Handler(), hotRequest(b, s)
}

func postBench(b *testing.B, h http.Handler, body []byte) {
	b.Helper()
	r := httptest.NewRequest(http.MethodPost, "/api/v1/select", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

// BenchmarkSelectCold measures the full pipeline per request: cache and
// coalescing disabled, every call recomputes (the pre-accelerator
// serving cost).
func BenchmarkSelectCold(b *testing.B) {
	_, h, req := benchServer(b, Options{CacheDisabled: true})
	body, _ := json.Marshal(req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postBench(b, h, body)
	}
}

// BenchmarkSelectWarm measures the hot-key fast path: one priming request,
// then every call is a shard-local cache hit.
func BenchmarkSelectWarm(b *testing.B) {
	_, h, req := benchServer(b, Options{})
	body, _ := json.Marshal(req)
	postBench(b, h, body) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postBench(b, h, body)
	}
}

// benchConcurrentDistinct fires 8 concurrent same-shape requests for
// distinct targets per iteration, cache purged each time — the cold-path
// concurrency profile that batching targets (coalescing cannot help:
// every request is distinct).
func benchConcurrentDistinct(b *testing.B, opts Options) {
	c := cellphoneCorpus(b, 3)
	s := NewWithOptions(map[string]*model.Corpus{"Cellphone": c}, nil, opts)
	h := s.Handler()
	const fanout = 8
	s.mu.RLock()
	targets := dataset.TargetIDs(s.corpora["Cellphone"])[:fanout]
	s.mu.RUnlock()
	bodies := make([][]byte, fanout)
	for i, tgt := range targets {
		req := hotRequest(b, s)
		req.Target = tgt
		req.MaxComparative = 3
		bodies[i], _ = json.Marshal(req)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.cache.Purge()
		var wg sync.WaitGroup
		for _, body := range bodies {
			wg.Add(1)
			go func(body []byte) {
				defer wg.Done()
				postBench(b, h, body)
			}(body)
		}
		wg.Wait()
	}
}

// BenchmarkSelectConcurrentDistinct is the unbatched baseline: 8 distinct
// cold requests each run their own full pipeline.
func BenchmarkSelectConcurrentDistinct(b *testing.B) {
	benchConcurrentDistinct(b, Options{})
}

// BenchmarkSelectConcurrentBatched is the same load with batching on: the
// 8 requests seal into one group sharing a slab pass and per-item
// regression problems. Divide by 8 for per-request cost.
func BenchmarkSelectConcurrentBatched(b *testing.B) {
	benchConcurrentDistinct(b, Options{BatchWindow: 10 * time.Millisecond, BatchMax: 8})
}

// BenchmarkSelectCoalesced measures the hot-key miss under concurrency:
// each iteration purges the cache and fires 8 identical requests at once,
// so one pipeline execution is amortized over all of them.
func BenchmarkSelectCoalesced(b *testing.B) {
	s, h, req := benchServer(b, Options{})
	body, _ := json.Marshal(req)
	const fanout = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.cache.Purge()
		var wg sync.WaitGroup
		for j := 0; j < fanout; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				postBench(b, h, body)
			}()
		}
		wg.Wait()
	}
}
