package service

import (
	"context"
	"strconv"
	"strings"

	"comparesets/internal/core"
	"comparesets/internal/model"
	"comparesets/internal/opinion"
	"comparesets/internal/simgraph"
)

// batchReq is one member of a batch group: everything the group executor
// needs to run the member's pipeline. ctx is the member's flight context —
// it dies when the member's last HTTP waiter disconnects, so the executor
// can skip abandoned slots without touching the rest of the group.
type batchReq struct {
	ctx context.Context
	req *SelectRequest
	// inst is resolved by the submitting handler inside the same lock
	// snapshot as the member's cache key, so key and instance always agree
	// on the corpus view even when mutations land mid-batch.
	inst   *model.Instance
	corpus *model.Corpus
	sel    core.Selector
	solver simgraph.Solver
}

// batchRes is one member's outcome. Per-slot failures ride inside the
// result (err) rather than failing the group: one bad target must not
// poison the co-batched requests.
type batchRes struct {
	payload   []byte
	cacheable bool
	err       error
}

// batchKey groups select requests that can share pipeline state: every
// selectKey field except the target. Same corpus epoch, algorithm, scheme,
// and selection hyperparameters means the per-item regression problems are
// interchangeable across members (they are keyed by item, and instances
// alias corpus item pointers), so one group execution shares a feature-slab
// pass and a ProblemCache across merely-similar requests.
func batchKey(req *SelectRequest, epoch string) string {
	var b strings.Builder
	b.Grow(128)
	b.WriteString(selectKeyVersion)
	sep := func(field, val string) {
		b.WriteByte('|')
		b.WriteString(field)
		b.WriteByte('=')
		b.WriteString(val)
	}
	sep("epoch", epoch)
	sep("cat", req.Category)
	sep("alg", req.Algorithm)
	sep("m", strconv.Itoa(req.M))
	sep("l", formatFloat(req.Lambda))
	sep("mu", formatFloat(req.Mu))
	sep("maxc", strconv.Itoa(req.MaxComparative))
	sep("sch", opinion.Binary{}.Name())
	sep("k", strconv.Itoa(req.K))
	if req.K > 0 {
		sep("meth", req.Method)
	}
	sep("sum", strconv.Itoa(req.Summarize))
	sep("exp", strconv.Itoa(req.Explain))
	sep("met", strconv.FormatBool(req.Metrics))
	return b.String()
}

// executeBatch runs one sealed group of same-shape select requests. The
// group-shared work happens once — a single feature-slab warm pass over the
// union of the members' items, feeding the corpus's shared ProblemCache so
// per-item regression problems built for one member are reused by every
// other member (and by later requests) — then each member's pipeline runs
// sequentially: problem shares make concurrent members safe, but on a
// saturated host interleaving them buys nothing and sequential execution
// keeps the group's cache and allocator behavior deterministic. Each member
// runs on its own flight context: an abandoned member is skipped at its
// slot without affecting the rest.
func (s *Server) executeBatch(gctx context.Context, reqs []*batchReq) ([]*batchRes, error) {
	out := make([]*batchRes, len(reqs))
	insts := make([]*model.Instance, len(reqs))
	for i, q := range reqs {
		// Members arrive with their instances pre-resolved; the fallback
		// covers direct Submit callers (tests) that skip the handler.
		if q.inst != nil {
			insts[i] = q.inst
			continue
		}
		inst, err := q.corpus.NewInstance(q.req.Target, q.req.MaxComparative)
		if err != nil {
			out[i] = &batchRes{err: notFound("%v", err)}
			continue
		}
		insts[i] = inst
	}

	// The group's single slab pass: touch the union of the members' items
	// once so every member's feature build finds resident slabs (and, in
	// compact mode, resident float32 companions). The group key pins one
	// corpus, hence one feature store. The scheme matches computeSelect's
	// default (the API always selects under Binary).
	s.mu.RLock()
	fs := s.feats[reqs[0].req.Category]
	pc := s.problems[reqs[0].req.Category]
	s.mu.RUnlock()
	if fs != nil {
		seen := make(map[*model.Item]bool)
		var items []*model.Item
		for _, inst := range insts {
			if inst == nil {
				continue
			}
			for _, it := range inst.Items {
				if !seen[it] {
					seen[it] = true
					items = append(items, it)
				}
			}
		}
		fs.Warm(items, opinion.Binary{}, s.float32)
	}

	for i, q := range reqs {
		if out[i] != nil {
			continue
		}
		if err := q.ctx.Err(); err != nil {
			out[i] = &batchRes{err: err}
			continue
		}
		resp, apiErr := s.computeSelect(q.ctx, q.req, insts[i], fs, q.sel, q.solver, pc, selectKey(q.req, ""))
		if apiErr != nil {
			out[i] = &batchRes{err: apiErr}
			continue
		}
		// Pooled-scratch encoding with writeJSON's trailing-newline framing
		// baked in (byte-identical to the unbatched flight path).
		payload := s.encodeSelectPayload(resp)
		out[i] = &batchRes{payload: payload, cacheable: resp.Optimal == nil}
	}
	return out, nil
}
