package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"comparesets/internal/datagen"
	"comparesets/internal/dataset"
	"comparesets/internal/lexicon"
	"comparesets/internal/model"
	"comparesets/internal/obs"
)

func cellphoneCorpus(tb testing.TB, seed int64) *model.Corpus {
	tb.Helper()
	c, err := datagen.Generate(datagen.Config{
		Category: lexicon.Cellphone, Products: 30, Reviewers: 60,
		MeanReviews: 8, MeanAlsoBought: 5, Seed: seed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// postRecorded drives the handler directly (no network) and returns the
// recorded response.
func postRecorded(tb testing.TB, h http.Handler, url string, payload any) *httptest.ResponseRecorder {
	tb.Helper()
	buf, err := json.Marshal(payload)
	if err != nil {
		tb.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func hotRequest(tb testing.TB, s *Server) SelectRequest {
	tb.Helper()
	s.mu.RLock()
	targets := dataset.TargetIDs(s.corpora["Cellphone"])
	s.mu.RUnlock()
	return SelectRequest{
		Category: "Cellphone", Target: targets[0],
		M: 3, Lambda: 1, Mu: 0.1, K: 3, Method: "greedy",
	}
}

func TestWarmHitReturnsIdenticalBytes(t *testing.T) {
	c := cellphoneCorpus(t, 3)
	s := New(map[string]*model.Corpus{"Cellphone": c}, nil)
	h := s.Handler()
	req := hotRequest(t, s)

	hits := obs.NewCacheMetrics(s.reg, "servecache").Hits
	before := hits.Value()
	cold := postRecorded(t, h, "/api/v1/select", req)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold: status %d body %s", cold.Code, cold.Body.String())
	}
	warm := postRecorded(t, h, "/api/v1/select", req)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm: status %d", warm.Code)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Error("warm response bytes differ from the cold response")
	}
	if warm.Header().Get("Content-Type") != "application/json" {
		t.Errorf("warm content type = %q", warm.Header().Get("Content-Type"))
	}
	if hits.Value() != before+1 {
		t.Errorf("hit counter delta = %d, want 1", hits.Value()-before)
	}
}

// The cached path must produce the same payload as a cache-disabled server
// (modulo elapsed_ms, which measures real work).
func TestCachedAndUncachedPayloadsAgree(t *testing.T) {
	cached := New(map[string]*model.Corpus{"Cellphone": cellphoneCorpus(t, 3)}, nil)
	plain := NewWithOptions(map[string]*model.Corpus{"Cellphone": cellphoneCorpus(t, 3)}, nil, Options{CacheDisabled: true})
	req := hotRequest(t, cached)

	norm := func(w *httptest.ResponseRecorder) string {
		var out map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		delete(out, "elapsed_ms")
		b, _ := json.Marshal(out)
		return string(b)
	}
	a := postRecorded(t, cached.Handler(), "/api/v1/select", req)
	b := postRecorded(t, plain.Handler(), "/api/v1/select", req)
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("status %d / %d", a.Code, b.Code)
	}
	if norm(a) != norm(b) {
		t.Errorf("payloads disagree:\ncached:  %s\nuncached: %s", a.Body.String(), b.Body.String())
	}
}

func TestAddCorpusBumpsEpochAndInvalidates(t *testing.T) {
	s := New(map[string]*model.Corpus{"Cellphone": cellphoneCorpus(t, 3)}, nil)
	h := s.Handler()
	req := hotRequest(t, s)

	s.mu.RLock()
	epochBefore := s.epochs["Cellphone"]
	s.mu.RUnlock()

	cold := postRecorded(t, h, "/api/v1/select", req)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold: status %d", cold.Code)
	}
	if n := s.cache.Len(); n != 1 {
		t.Fatalf("cache entries after cold request = %d, want 1", n)
	}

	// Replace the corpus: same category, different content.
	s.AddCorpus("Cellphone", cellphoneCorpus(t, 99))
	s.mu.RLock()
	epochAfter := s.epochs["Cellphone"]
	s.mu.RUnlock()
	if epochAfter == epochBefore {
		t.Fatal("epoch token unchanged after AddCorpus")
	}

	// The old cached entry is unreachable: the same request recomputes
	// (a fresh entry appears instead of the old one being served).
	misses := obs.NewCacheMetrics(s.reg, "servecache").Misses
	before := misses.Value()
	resp := postRecorded(t, h, "/api/v1/select", req)
	// The old target may not exist in the replacement corpus; recompute is
	// proven by the miss counter either way.
	if resp.Code != http.StatusOK && resp.Code != http.StatusNotFound {
		t.Fatalf("post-replace: status %d body %s", resp.Code, resp.Body.String())
	}
	if misses.Value() != before+1 {
		t.Errorf("miss counter delta = %d, want 1 (old epoch entry must be unreachable)", misses.Value()-before)
	}
}

// Concurrent identical requests must execute the pipeline exactly once.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	s := New(map[string]*model.Corpus{"Cellphone": cellphoneCorpus(t, 3)}, nil)
	h := s.Handler()
	req := hotRequest(t, s)

	fm := obs.NewCacheMetrics(s.reg, "selectflight")
	execBefore := fm.Executions.Value()

	const callers = 12
	var wg sync.WaitGroup
	bodies := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postRecorded(t, h, "/api/v1/select", req)
			if w.Code != http.StatusOK {
				t.Errorf("caller %d: status %d", i, w.Code)
				return
			}
			bodies[i] = w.Body.Bytes()
		}(i)
	}
	wg.Wait()

	// Every response is byte-identical.
	for i := 1; i < callers; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("caller %d got different bytes", i)
		}
	}
	// The pipeline ran once, or — when some callers arrived after the
	// flight finished — their lookups were cache hits, never extra
	// executions.
	if got := fm.Executions.Value() - execBefore; got != 1 {
		t.Errorf("pipeline executions = %d, want exactly 1", got)
	}
}

func TestCacheDisabledServerStillServes(t *testing.T) {
	s := NewWithOptions(map[string]*model.Corpus{"Cellphone": cellphoneCorpus(t, 3)}, nil, Options{CacheDisabled: true})
	if s.cache != nil || s.flights != nil {
		t.Fatal("cache layers built despite CacheDisabled")
	}
	h := s.Handler()
	req := hotRequest(t, s)
	for i := 0; i < 2; i++ {
		if w := postRecorded(t, h, "/api/v1/select", req); w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, w.Code)
		}
	}
}

func TestSelectKeyCanonicalization(t *testing.T) {
	base := SelectRequest{Category: "C", Target: "t", Algorithm: "CompaReSetS+", M: 3, Lambda: 1, Mu: 0.1}
	k1 := selectKey(&base, "1.abc")

	// TimeoutMS must not participate.
	to := base
	to.TimeoutMS = 5000
	if selectKey(&to, "1.abc") != k1 {
		t.Error("timeout_ms leaked into the cache key")
	}
	// Epoch must.
	if selectKey(&base, "2.abc") == k1 {
		t.Error("epoch ignored by the cache key")
	}
	// Every payload-shaping field must.
	variants := []SelectRequest{}
	for _, mutate := range []func(r *SelectRequest){
		func(r *SelectRequest) { r.Target = "u" },
		func(r *SelectRequest) { r.Algorithm = "CompaReSetS" },
		func(r *SelectRequest) { r.M = 4 },
		func(r *SelectRequest) { r.Lambda = 2 },
		func(r *SelectRequest) { r.Mu = 0.2 },
		func(r *SelectRequest) { r.MaxComparative = 7 },
		func(r *SelectRequest) { r.K = 3; r.Method = "greedy" },
		func(r *SelectRequest) { r.Summarize = 1 },
		func(r *SelectRequest) { r.Explain = 2 },
		func(r *SelectRequest) { r.Metrics = true },
	} {
		v := base
		mutate(&v)
		variants = append(variants, v)
	}
	seen := map[string]int{k1: -1}
	for i, v := range variants {
		k := selectKey(&v, "1.abc")
		if j, dup := seen[k]; dup {
			t.Errorf("variants %d and %d collide on key %q", i, j, k)
		}
		seen[k] = i
	}
	// Method distinguishes keys when K > 0.
	g := base
	g.K, g.Method = 3, "greedy"
	e := base
	e.K, e.Method = 3, "exact"
	if selectKey(&g, "1.abc") == selectKey(&e, "1.abc") {
		t.Error("shortlist method ignored by the cache key")
	}
}

// TestConcurrentCacheChurn exercises the full serving path while corpora
// are being replaced — the race certificate for the epoch/cache/flight
// interplay.
func TestConcurrentCacheChurn(t *testing.T) {
	s := New(map[string]*model.Corpus{"Cellphone": cellphoneCorpus(t, 3)}, nil)
	h := s.Handler()
	req := hotRequest(t, s)

	replacement := cellphoneCorpus(t, 3)
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.AddCorpus("Cellphone", replacement)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				rec := postRecorded(t, h, "/api/v1/select", req)
				if rec.Code != http.StatusOK {
					t.Errorf("status %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-churnDone
}
