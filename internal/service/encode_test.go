package service

import (
	"encoding/json"
	"math"
	"testing"

	"comparesets/internal/metrics"
)

// selectResponseVariants exercises every omitempty combination the handler
// can produce, plus the nil-slice null encodings parity must hold for.
func selectResponseVariants() []*SelectResponse {
	optFalse := false
	optTrue := true
	return []*SelectResponse{
		{}, // all zero: nil items encodes as null
		{
			Algorithm: "CompaReSetS+",
			Objective: 1.75,
			Items:     []SelectedItem{},
			ElapsedMS: 0.123,
		},
		{
			Algorithm: "CompaReSetS+",
			Objective: 2.0 / 3.0,
			Items: []SelectedItem{
				{
					ID: "target-1", Title: "Alpha <Phone> & Co", IsTarget: true,
					Reviews: []SelectedReview{
						{ID: "r1", Rating: 5, Text: "great \"camera\"\nlong battery"},
						{ID: "r2", Rating: 1, Text: "controls \t and unicode 日本語 and invalid \xff"},
					},
				},
				{
					ID: "comp-1", Title: "Beta", IsTarget: false,
					Reviews: nil, // null under the non-omitempty tag
					Summary: []string{"summary line <1>", "summary & line 2"},
				},
			},
			ElapsedMS: 12.5,
		},
		{
			Algorithm:       "CompaReSetS+",
			Objective:       3.25,
			Items:           []SelectedItem{{ID: "t", Title: "T", IsTarget: true, Reviews: []SelectedReview{}}},
			Shortlist:       []int{0, 3, 7},
			ShortlistWeight: 0.875,
			Optimal:         &optFalse,
			Degraded:        true,
			Explanations:    []string{"A beats B on camera", "B has \u2028 separator"},
			Metrics: &metrics.InstanceMetrics{
				AspectCoverage:     0.5,
				OpinionCoverage:    1e-9,
				Redundancy:         0.25,
				Representativeness: 1,
			},
			ElapsedMS: 1e-7, // exercises e-notation cleanup
		},
		{
			Algorithm: "greedy",
			Objective: math.MaxFloat64,
			Items:     []SelectedItem{},
			Optimal:   &optTrue,
			ElapsedMS: 3.5e21,
		},
	}
}

func TestSelectResponseEncodeParity(t *testing.T) {
	for i, resp := range selectResponseVariants() {
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		got := resp.appendJSON(nil)
		if string(got) != string(want) {
			t.Errorf("variant %d:\n got %s\nwant %s", i, got, want)
		}
	}
}

func TestErrorResponseEncodeParity(t *testing.T) {
	envs := []ErrorResponse{
		{Error: ErrorBody{Code: CodeInternal, Message: "internal error"}},
		{Error: ErrorBody{Code: "unprocessable", Message: "m must be at least 1, got -2", Field: "m"}},
		{Error: ErrorBody{Code: "bad_request", Message: "weird <chars> & \"quotes\" \xff", Field: ""}},
		{Error: ErrorBody{}},
	}
	for i, e := range envs {
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		got := e.appendJSON(nil)
		if string(got) != string(want) {
			t.Errorf("envelope %d:\n got %s\nwant %s", i, got, want)
		}
	}
}

func TestMutationReceiptEncodeParity(t *testing.T) {
	receipts := []MutationReceipt{
		{},
		{
			Kind: "append", Category: "cell_phones", Item: "item-1",
			Reviews: []string{"r1", "r2"}, Epoch: "3f9a", Generation: 18446744073709551615,
			AffectedItems: []string{"item-1"},
			Invalidation: InvalidationScope{
				Scope: "item", ProblemsDropped: 4, ColumnsComputed: 2, ColumnsReused: 14,
			},
			ElapsedMS: 0.875,
		},
		{
			Kind: "remove", Category: "cat <&>", Item: "item \xff",
			Reviews: []string{}, AffectedItems: nil, Epoch: "", Generation: 0,
			Invalidation: InvalidationScope{Scope: "item"},
			ElapsedMS:    123456.789,
		},
	}
	for i, r := range receipts {
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		got := r.appendJSON(nil)
		if string(got) != string(want) {
			t.Errorf("receipt %d:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestDegradeBodySplice guards the degradeBody assumption the encoder must
// preserve: the canonical payload starts {"algorithm": so the degraded
// flag can be spliced right after the opening brace.
func TestDegradeBodySplice(t *testing.T) {
	resp := &SelectResponse{Algorithm: "CompaReSetS+", Items: []SelectedItem{}, ElapsedMS: 1}
	body := append(resp.appendJSON(nil), '\n')
	degraded := degradeBody(body)
	var round SelectResponse
	if err := json.Unmarshal(degraded, &round); err != nil {
		t.Fatalf("degraded body does not parse: %v\n%s", err, degraded)
	}
	if !round.Degraded {
		t.Fatalf("degraded flag missing: %s", degraded)
	}
}

// FuzzEncodeParity drives arbitrary review/aspect strings and floats
// through the full select-response encoder against json.Marshal.
func FuzzEncodeParity(f *testing.F) {
	f.Add("alg", "t1", "Title", "r1", 5, "review text", "summary", "explain", 0.5, 1.25)
	f.Add("", "", "<&>", "", -1, "\xff\u2028\u2029", "", "", 1e-7, 0.0)
	f.Fuzz(func(t *testing.T, alg, itemID, title, revID string, rating int, text, summary, explain string, objective, weight float64) {
		if math.IsNaN(objective) || math.IsInf(objective, 0) ||
			math.IsNaN(weight) || math.IsInf(weight, 0) {
			t.Skip() // json.Marshal rejects non-finite floats
		}
		resp := &SelectResponse{
			Algorithm: alg,
			Objective: objective,
			Items: []SelectedItem{{
				ID: itemID, Title: title, IsTarget: true,
				Reviews: []SelectedReview{{ID: revID, Rating: rating, Text: text}},
				Summary: []string{summary},
			}},
			ShortlistWeight: weight,
			Explanations:    []string{explain},
			ElapsedMS:       objective,
		}
		want, err := json.Marshal(resp)
		if err != nil {
			t.Skip()
		}
		got := resp.appendJSON(nil)
		if string(got) != string(want) {
			t.Fatalf("parity:\n got %s\nwant %s", got, want)
		}
	})
}
