// Hand-rolled JSON encoders for the hot response shapes: the v1 select
// response, the error envelope, and mutation receipts. Reflection-based
// encoding/json walks these types on every request; the appendJSON methods
// below write the identical bytes straight into a pooled buffer instead,
// so steady-state response encoding allocates nothing (cacheable select
// payloads pay one exact-size copy, because the servecache retains them).
//
// Byte identity with encoding/json is the invariant everything else leans
// on: cached payloads and freshly encoded ones must compare equal, the
// degradeBody splice assumes the canonical field order, and clients diff
// responses across server versions. Parity is locked per shape by the
// golden tests in encode_test.go and fuzzed by FuzzEncodeParity; the
// omitempty decisions below mirror the struct tags field by field.
package service

import (
	"net/http"

	"comparesets/internal/jsonenc"
	"comparesets/internal/metrics"
)

// jsonAppender is the fast path contract of writeJSON: response types that
// can append their own canonical encoding skip reflection entirely.
type jsonAppender interface {
	appendJSON(dst []byte) []byte
}

func appendStringArray(dst []byte, xs []string) []byte {
	dst = append(dst, '[')
	for i, x := range xs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = jsonenc.AppendString(dst, x)
	}
	return append(dst, ']')
}

// appendJSON encodes the select response exactly as json.Marshal does,
// honoring each field's omitempty: shortlist/explanations drop when empty,
// shortlist_weight when zero, optimal when nil, degraded when false,
// metrics when nil. Items and nested Reviews are not omitempty, so a nil
// slice encodes as null (never produced by computeSelect, but parity holds
// regardless).
func (r *SelectResponse) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"algorithm":`...)
	dst = jsonenc.AppendString(dst, r.Algorithm)
	dst = append(dst, `,"objective":`...)
	dst = jsonenc.AppendFloat(dst, r.Objective)
	dst = append(dst, `,"items":`...)
	if r.Items == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range r.Items {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = r.Items[i].appendJSON(dst)
		}
		dst = append(dst, ']')
	}
	if len(r.Shortlist) > 0 {
		dst = append(dst, `,"shortlist":[`...)
		for i, p := range r.Shortlist {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = jsonenc.AppendInt(dst, int64(p))
		}
		dst = append(dst, ']')
	}
	if r.ShortlistWeight != 0 {
		dst = append(dst, `,"shortlist_weight":`...)
		dst = jsonenc.AppendFloat(dst, r.ShortlistWeight)
	}
	if r.Optimal != nil {
		dst = append(dst, `,"optimal":`...)
		dst = jsonenc.AppendBool(dst, *r.Optimal)
	}
	if r.Degraded {
		dst = append(dst, `,"degraded":true`...)
	}
	if len(r.Explanations) > 0 {
		dst = append(dst, `,"explanations":`...)
		dst = appendStringArray(dst, r.Explanations)
	}
	if r.Metrics != nil {
		dst = append(dst, `,"metrics":`...)
		dst = appendInstanceMetrics(dst, r.Metrics)
	}
	dst = append(dst, `,"elapsed_ms":`...)
	dst = jsonenc.AppendFloat(dst, r.ElapsedMS)
	return append(dst, '}')
}

func (it *SelectedItem) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"id":`...)
	dst = jsonenc.AppendString(dst, it.ID)
	dst = append(dst, `,"title":`...)
	dst = jsonenc.AppendString(dst, it.Title)
	dst = append(dst, `,"is_target":`...)
	dst = jsonenc.AppendBool(dst, it.IsTarget)
	dst = append(dst, `,"reviews":`...)
	if it.Reviews == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range it.Reviews {
			if i > 0 {
				dst = append(dst, ',')
			}
			r := &it.Reviews[i]
			dst = append(dst, `{"id":`...)
			dst = jsonenc.AppendString(dst, r.ID)
			dst = append(dst, `,"rating":`...)
			dst = jsonenc.AppendInt(dst, int64(r.Rating))
			dst = append(dst, `,"text":`...)
			dst = jsonenc.AppendString(dst, r.Text)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if len(it.Summary) > 0 {
		dst = append(dst, `,"summary":`...)
		dst = appendStringArray(dst, it.Summary)
	}
	return append(dst, '}')
}

// appendInstanceMetrics encodes metrics.InstanceMetrics, which carries no
// json tags — encoding/json emits the Go field names in declaration order,
// and so must we.
func appendInstanceMetrics(dst []byte, m *metrics.InstanceMetrics) []byte {
	dst = append(dst, `{"AspectCoverage":`...)
	dst = jsonenc.AppendFloat(dst, m.AspectCoverage)
	dst = append(dst, `,"OpinionCoverage":`...)
	dst = jsonenc.AppendFloat(dst, m.OpinionCoverage)
	dst = append(dst, `,"Redundancy":`...)
	dst = jsonenc.AppendFloat(dst, m.Redundancy)
	dst = append(dst, `,"Representativeness":`...)
	dst = jsonenc.AppendFloat(dst, m.Representativeness)
	return append(dst, '}')
}

// appendJSON encodes the error envelope. Every non-2xx response funnels
// through here via writeAPIError, so error paths are reflection-free too.
func (e ErrorResponse) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"error":{"code":`...)
	dst = jsonenc.AppendString(dst, e.Error.Code)
	dst = append(dst, `,"message":`...)
	dst = jsonenc.AppendString(dst, e.Error.Message)
	if e.Error.Field != "" {
		dst = append(dst, `,"field":`...)
		dst = jsonenc.AppendString(dst, e.Error.Field)
	}
	return append(dst, '}', '}')
}

// appendJSON encodes a mutation receipt. Reviews and AffectedItems are not
// omitempty (nil encodes as null); every other field is unconditional.
func (r MutationReceipt) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"kind":`...)
	dst = jsonenc.AppendString(dst, r.Kind)
	dst = append(dst, `,"category":`...)
	dst = jsonenc.AppendString(dst, r.Category)
	dst = append(dst, `,"item":`...)
	dst = jsonenc.AppendString(dst, r.Item)
	dst = append(dst, `,"reviews":`...)
	if r.Reviews == nil {
		dst = append(dst, "null"...)
	} else {
		dst = appendStringArray(dst, r.Reviews)
	}
	dst = append(dst, `,"epoch":`...)
	dst = jsonenc.AppendString(dst, r.Epoch)
	dst = append(dst, `,"generation":`...)
	dst = jsonenc.AppendUint(dst, r.Generation)
	dst = append(dst, `,"affected_items":`...)
	if r.AffectedItems == nil {
		dst = append(dst, "null"...)
	} else {
		dst = appendStringArray(dst, r.AffectedItems)
	}
	dst = append(dst, `,"invalidation":{"scope":`...)
	dst = jsonenc.AppendString(dst, r.Invalidation.Scope)
	dst = append(dst, `,"problems_dropped":`...)
	dst = jsonenc.AppendInt(dst, int64(r.Invalidation.ProblemsDropped))
	dst = append(dst, `,"columns_computed":`...)
	dst = jsonenc.AppendInt(dst, int64(r.Invalidation.ColumnsComputed))
	dst = append(dst, `,"columns_reused":`...)
	dst = jsonenc.AppendInt(dst, int64(r.Invalidation.ColumnsReused))
	dst = append(dst, `},"elapsed_ms":`...)
	dst = jsonenc.AppendFloat(dst, r.ElapsedMS)
	return append(dst, '}')
}

// encodeSelectPayload renders a select response into a retained []byte
// with the trailing newline writeJSON framing expects. The servecache
// keeps cacheable payloads alive indefinitely, so the bytes cannot live in
// a pooled buffer: the response is assembled in pooled scratch and copied
// once into an exact-size slice (the only allocation on a warm-miss fill).
func (s *Server) encodeSelectPayload(resp *SelectResponse) []byte {
	buf := jsonenc.GetBuffer()
	buf.B = resp.appendJSON(buf.B)
	buf.B = append(buf.B, '\n')
	out := make([]byte, len(buf.B))
	copy(out, buf.B)
	jsonenc.PutBuffer(buf)
	s.encodeBytes.Add(len(out))
	return out
}

// writeJSON renders v with the hand-rolled encoder when v provides one
// (all hot-path response types do), falling back to encoding/json for the
// long tail of cold admin shapes (health maps, category lists). Both paths
// end with json.Encoder's trailing-newline framing and a single Write, and
// a failed write is accounted as a client abort (499) — the encodings of
// our own types cannot fail.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	if a, ok := v.(jsonAppender); ok {
		buf := jsonenc.GetBuffer()
		buf.B = a.appendJSON(buf.B)
		buf.B = append(buf.B, '\n')
		s.encodeBytes.Add(len(buf.B))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		if _, err := w.Write(buf.B); err != nil {
			s.clientAborts.Inc()
		}
		jsonenc.PutBuffer(buf)
		return
	}
	s.writeJSONReflect(w, status, v)
}
