package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"comparesets/internal/dataset"
	"comparesets/internal/model"
)

func TestMetricsExposition(t *testing.T) {
	s, ts := testServer(t)
	s.mu.RLock()
	targets := dataset.TargetIDs(s.corpora["Cellphone"])
	s.mu.RUnlock()

	// Drive one full select (with shortlist) so both the HTTP middleware and
	// the pipeline-stage timers have recorded observations.
	req := SelectRequest{
		Category: "Cellphone", Target: targets[0],
		M: 3, Lambda: 1, Mu: 0.1, K: 3, Method: "greedy",
	}
	if resp, body := post(t, ts.URL+"/api/v1/select", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("select: status %d body %s", resp.StatusCode, body)
	}

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		// Per-endpoint HTTP latency histogram + request counter.
		`comparesets_http_request_duration_seconds_bucket{endpoint="select",le="+Inf"}`,
		`comparesets_http_request_duration_seconds_count{endpoint="select"}`,
		`comparesets_http_requests_total{code="200",endpoint="select"}`,
		`# TYPE comparesets_http_request_duration_seconds histogram`,
		// Pipeline-stage timers recorded by the selection internals.
		`comparesets_pipeline_stage_duration_seconds_count{stage="feature_build"}`,
		`comparesets_pipeline_stage_duration_seconds_count{stage="nomp"}`,
		`comparesets_pipeline_stage_duration_seconds_count{stage="shortlist"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The expvar bridge and pprof index must be mounted on the same mux.
	if resp, _ := get(t, ts.URL+"/debug/vars"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars: status %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/: status %d", resp.StatusCode)
	}
}

// heavyInstanceRequest builds an inline instance big enough that its
// selection cannot finish within 1 ms: every review carries a distinct
// mention pattern so no columns collapse in the regression.
func heavyInstanceRequest() SelectRequest {
	aspects := make([]string, 20)
	for i := range aspects {
		aspects[i] = fmt.Sprintf("aspect%02d", i)
	}
	items := make([]*model.Item, 80)
	for i := range items {
		item := &model.Item{ID: fmt.Sprintf("p%02d", i), Title: fmt.Sprintf("Product %d", i)}
		for j := 0; j < 200; j++ {
			pol := model.Positive
			if (i+j)%2 == 1 {
				pol = model.Negative
			}
			item.Reviews = append(item.Reviews, &model.Review{
				ID:     fmt.Sprintf("p%02d-r%03d", i, j),
				Rating: 1 + (i+j)%5,
				Mentions: []model.Mention{
					{Aspect: j % 20, Polarity: pol, Score: 1},
					{Aspect: (j / 20) % 20, Polarity: model.Positive, Score: 1},
					{Aspect: (i + j) % 20, Polarity: model.Negative, Score: 1},
				},
			})
		}
		items[i] = item
	}
	return SelectRequest{
		Aspects: aspects, Items: items,
		Algorithm: "CompaReSetS", M: 5, Lambda: 1, Mu: 0.1,
	}
}

func TestSelectTimeoutMS(t *testing.T) {
	_, ts := testServer(t)
	req := heavyInstanceRequest()
	req.TimeoutMS = 1
	resp, body := post(t, ts.URL+"/api/v1/select", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (want 504), body %.200s", resp.StatusCode, body)
	}
	var envelope ErrorResponse
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("unmarshalling %s: %v", body, err)
	}
	if envelope.Error.Code != CodeDeadlineExceeded {
		t.Errorf("code = %q (want %q)", envelope.Error.Code, CodeDeadlineExceeded)
	}

	// The same request without a deadline succeeds, proving the 504 came
	// from the timeout rather than from the instance being invalid.
	req.TimeoutMS = 0
	resp, body = post(t, ts.URL+"/api/v1/select", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("without timeout: status %d body %.200s", resp.StatusCode, body)
	}
}
