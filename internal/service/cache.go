package service

import (
	"fmt"
	"strconv"
	"strings"

	"comparesets/internal/opinion"
)

// selectKeyVersion is bumped whenever the select pipeline changes in a way
// that alters response payloads for the same request, so stale processes
// never serve incompatible cached bytes after a rolling upgrade.
const selectKeyVersion = "v1"

// selectKey builds the canonical cache key of a corpus-referenced select
// request. Every request field that can influence the response payload
// participates; TimeoutMS deliberately does not (it bounds computation
// time, not the result). The epoch token — bumped whenever the category's
// corpus is replaced — makes invalidation a key change rather than a cache
// sweep. The request must already be canonicalized (algorithm and
// shortlist method defaults applied).
func selectKey(req *SelectRequest, epoch string) string {
	var b strings.Builder
	b.Grow(160)
	b.WriteString(selectKeyVersion)
	sep := func(field, val string) {
		b.WriteByte('|')
		b.WriteString(field)
		b.WriteByte('=')
		b.WriteString(val)
	}
	sep("epoch", epoch)
	sep("cat", req.Category)
	sep("tgt", req.Target)
	sep("alg", req.Algorithm)
	sep("m", strconv.Itoa(req.M))
	sep("l", formatFloat(req.Lambda))
	sep("mu", formatFloat(req.Mu))
	sep("maxc", strconv.Itoa(req.MaxComparative))
	// The API currently always selects under the default opinion scheme;
	// keying it keeps cached payloads correct the day requests can choose.
	sep("sch", opinion.Binary{}.Name())
	sep("k", strconv.Itoa(req.K))
	if req.K > 0 {
		sep("meth", req.Method)
	}
	sep("sum", strconv.Itoa(req.Summarize))
	sep("exp", strconv.Itoa(req.Explain))
	sep("met", strconv.FormatBool(req.Metrics))
	return b.String()
}

func formatFloat(f float64) string { return fmt.Sprintf("%g", f) }
