// Package service exposes comparative review selection as an HTTP JSON API
// — the shape a storefront backend would deploy: load (or synthesize)
// corpora at startup, then answer per-target selection and shortlist
// queries, which are independent and served concurrently (§4.1.1).
//
// Endpoints:
//
//	GET  /healthz                     liveness probe
//	GET  /api/v1/categories           loaded corpus names + stats
//	GET  /api/v1/targets?category=X   qualifying target product IDs
//	POST /api/v1/select               select review sets (+ optional shortlist)
//	POST /api/v1/extract              aspect-sentiment extraction for raw text
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"comparesets/internal/aspectex"
	"comparesets/internal/core"
	"comparesets/internal/dataset"
	"comparesets/internal/explain"
	"comparesets/internal/lexicon"
	"comparesets/internal/metrics"
	"comparesets/internal/model"
	"comparesets/internal/simgraph"
	"comparesets/internal/summarize"
)

// Server serves the selection API over a set of loaded corpora.
type Server struct {
	mu      sync.RWMutex
	corpora map[string]*model.Corpus
	started time.Time
	logger  *log.Logger
}

// New creates a server over the given corpora (keyed by category name).
func New(corpora map[string]*model.Corpus, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.Default()
	}
	s := &Server{corpora: map[string]*model.Corpus{}, started: time.Now(), logger: logger}
	for name, c := range corpora {
		s.corpora[name] = c
	}
	return s
}

// AddCorpus registers (or replaces) a corpus at runtime.
func (s *Server) AddCorpus(name string, c *model.Corpus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.corpora[name] = c
}

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /api/v1/categories", s.handleCategories)
	mux.HandleFunc("GET /api/v1/targets", s.handleTargets)
	mux.HandleFunc("POST /api/v1/select", s.handleSelect)
	mux.HandleFunc("POST /api/v1/extract", s.handleExtract)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"uptime": time.Since(s.started).String(),
	})
}

// CategoryInfo is one row of the categories listing.
type CategoryInfo struct {
	Name     string `json:"name"`
	Products int    `json:"products"`
	Reviews  int    `json:"reviews"`
	Targets  int    `json:"targets"`
}

func (s *Server) handleCategories(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []CategoryInfo
	for name, c := range s.corpora {
		st := dataset.Compute(c)
		out = append(out, CategoryInfo{
			Name: name, Products: st.Products, Reviews: st.Reviews, Targets: st.TargetProducts,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	category := r.URL.Query().Get("category")
	s.mu.RLock()
	c, ok := s.corpora[category]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown category %q", category))
		return
	}
	writeJSON(w, http.StatusOK, dataset.TargetIDs(c))
}

// SelectRequest is the /api/v1/select request body.
type SelectRequest struct {
	// Category + Target reference a loaded corpus...
	Category string `json:"category,omitempty"`
	Target   string `json:"target,omitempty"`
	// ...or Items + Aspects supply an inline instance (Items[0] = target).
	Aspects []string      `json:"aspects,omitempty"`
	Items   []*model.Item `json:"items,omitempty"`

	// Algorithm defaults to "CompaReSetS+".
	Algorithm string  `json:"algorithm,omitempty"`
	M         int     `json:"m"`
	Lambda    float64 `json:"lambda"`
	Mu        float64 `json:"mu"`
	// MaxComparative truncates the also-bought list (0 = full).
	MaxComparative int `json:"max_comparative,omitempty"`
	// K > 0 additionally shortlists with the given method
	// ("exact", "greedy", "topk", "random"; default "greedy").
	K      int    `json:"k,omitempty"`
	Method string `json:"method,omitempty"`
	// Summarize > 0 adds up to that many extracted summary sentences per
	// item; Explain > 0 adds up to that many comparative explanation
	// lines.
	Summarize int `json:"summarize,omitempty"`
	Explain   int `json:"explain,omitempty"`
	// Metrics requests the §5.1 selection-quality scores in the response.
	Metrics bool `json:"metrics,omitempty"`
}

// SelectedReview is one chosen review in the response.
type SelectedReview struct {
	ID     string `json:"id"`
	Rating int    `json:"rating"`
	Text   string `json:"text"`
}

// SelectedItem is one item with its selected reviews.
type SelectedItem struct {
	ID       string           `json:"id"`
	Title    string           `json:"title"`
	IsTarget bool             `json:"is_target"`
	Reviews  []SelectedReview `json:"reviews"`
	// Summary holds extracted summary sentences when requested.
	Summary []string `json:"summary,omitempty"`
}

// SelectResponse is the /api/v1/select response body.
type SelectResponse struct {
	Algorithm string         `json:"algorithm"`
	Objective float64        `json:"objective"`
	Items     []SelectedItem `json:"items"`
	// Shortlist holds instance positions when K > 0.
	Shortlist       []int   `json:"shortlist,omitempty"`
	ShortlistWeight float64 `json:"shortlist_weight,omitempty"`
	// Explanations holds comparative explanation lines when requested.
	Explanations []string `json:"explanations,omitempty"`
	// Metrics holds the §5.1 quality scores when requested.
	Metrics   *metrics.InstanceMetrics `json:"metrics,omitempty"`
	ElapsedMS float64                  `json:"elapsed_ms"`
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	inst, status, err := s.resolveInstance(&req)
	if err != nil {
		writeError(w, status, err)
		return
	}
	if req.Algorithm == "" {
		req.Algorithm = "CompaReSetS+"
	}
	sel, ok := core.SelectorByName(req.Algorithm)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q", req.Algorithm))
		return
	}
	cfg := core.Config{M: req.M, Lambda: req.Lambda, Mu: req.Mu}
	start := time.Now()
	selection, err := sel.Select(inst, cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := SelectResponse{
		Algorithm: sel.Name(),
		Objective: selection.Objective,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	sets := selection.Reviews(inst)
	for i, it := range inst.Items {
		item := SelectedItem{ID: it.ID, Title: it.Title, IsTarget: i == 0}
		for _, rv := range sets[i] {
			item.Reviews = append(item.Reviews, SelectedReview{ID: rv.ID, Rating: rv.Rating, Text: rv.Text})
		}
		if req.Summarize > 0 {
			item.Summary = summarize.Reviews(sets[i], summarize.Options{MaxSentences: req.Summarize})
		}
		resp.Items = append(resp.Items, item)
	}
	if req.Explain > 0 {
		resp.Explanations = explain.Lines(explain.Compare(inst, selection), req.Explain)
	}
	if req.Metrics {
		m := metrics.EvaluateSelection(inst, selection)
		resp.Metrics = &m
	}
	if req.K > 0 {
		method := req.Method
		if method == "" {
			method = "greedy"
		}
		solver, err := solverFor(method)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		tg := core.NewTargets(inst, cfg)
		g := simgraph.Build(core.Stats(inst, tg, cfg, selection), cfg)
		res := solver.Solve(g, req.K)
		resp.Shortlist = res.Members
		resp.ShortlistWeight = res.Weight
	}
	writeJSON(w, http.StatusOK, resp)
}

func solverFor(method string) (simgraph.Solver, error) {
	switch method {
	case "exact", "ilp":
		return simgraph.Exact{Budget: 10 * time.Second}, nil
	case "greedy":
		return simgraph.Greedy{}, nil
	case "topk":
		return simgraph.TopK{}, nil
	case "random":
		return simgraph.RandomShortlist{}, nil
	default:
		return nil, fmt.Errorf("unknown shortlist method %q", method)
	}
}

// resolveInstance builds the problem instance from either a corpus
// reference or the inline items.
func (s *Server) resolveInstance(req *SelectRequest) (*model.Instance, int, error) {
	switch {
	case req.Category != "" && req.Target != "":
		s.mu.RLock()
		c, ok := s.corpora[req.Category]
		s.mu.RUnlock()
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("unknown category %q", req.Category)
		}
		inst, err := c.NewInstance(req.Target, req.MaxComparative)
		if err != nil {
			return nil, http.StatusNotFound, err
		}
		return inst, 0, nil
	case len(req.Items) > 0:
		if len(req.Aspects) == 0 {
			return nil, http.StatusBadRequest, errors.New("inline instances need a non-empty aspects list")
		}
		inst := &model.Instance{Aspects: model.NewVocabulary(req.Aspects), Items: req.Items}
		if err := inst.Validate(); err != nil {
			return nil, http.StatusBadRequest, err
		}
		return inst, 0, nil
	default:
		return nil, http.StatusBadRequest, errors.New("provide either category+target or inline items")
	}
}

// ExtractRequest is the /api/v1/extract request body.
type ExtractRequest struct {
	Category string `json:"category"`
	Text     string `json:"text"`
}

// ExtractResponse is the /api/v1/extract response body.
type ExtractResponse struct {
	Mentions []MentionJSON `json:"mentions"`
}

// MentionJSON is one extracted mention with a resolved aspect name.
type MentionJSON struct {
	Aspect   int     `json:"aspect"`
	Name     string  `json:"name"`
	Polarity string  `json:"polarity"`
	Score    float64 `json:"score"`
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	var req ExtractRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	cat, ok := lexicon.CategoryByName(req.Category)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown category %q", req.Category))
		return
	}
	var resp ExtractResponse
	for _, m := range aspectex.New(cat).Extract(req.Text) {
		resp.Mentions = append(resp.Mentions, MentionJSON{
			Aspect:   m.Aspect,
			Name:     cat.Aspects[m.Aspect].Name,
			Polarity: m.Polarity.String(),
			Score:    m.Score,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
