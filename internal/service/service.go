// Package service exposes comparative review selection as an HTTP JSON API
// — the shape a storefront backend would deploy: load (or synthesize)
// corpora at startup, then answer per-target selection and shortlist
// queries, which are independent and served concurrently (§4.1.1).
//
// Endpoints:
//
//	GET  /healthz                     liveness probe
//	GET  /readyz                      readiness probe (ok|degraded|overloaded)
//	GET  /api/v1/categories           loaded corpus names + stats
//	GET  /api/v1/targets?category=X   qualifying target product IDs
//	POST /api/v1/select               select review sets (+ optional shortlist)
//	POST /api/v1/extract              aspect-sentiment extraction for raw text
//	GET  /metrics                     Prometheus text exposition
//	GET  /debug/vars                  expvar JSON
//	GET  /debug/pprof/*               runtime profiles
//
//	POST   /api/v1/corpora/{category}/items/{item}/reviews            append reviews
//	PATCH  /api/v1/corpora/{category}/items/{item}/reviews/{review}   replace a review
//	DELETE /api/v1/corpora/{category}/items/{item}/reviews/{review}   remove a review
//
// The select endpoint is served through a three-layer accelerator sized
// for hot-key traffic: corpus-resident precomputed review features
// (internal/featstore), a sharded byte-budgeted LRU over fully marshaled
// responses keyed by a canonical request key that includes the corpus
// epoch (internal/servecache), and request coalescing so N concurrent
// identical requests run the pipeline once. Replacing a corpus with
// AddCorpus bumps its epoch, invalidating its cached results atomically.
//
// The mutation endpoints are the incremental write path: each applies one
// typed delta (append/update/remove a review) copy-on-write, refills only
// the touched item's feature columns, drops only its cached regression
// problems, and re-keys only cached selections whose instance contains the
// item (per-item generations folded into the cache key). Each returns a
// MutationReceipt quantifying that invalidation. See mutate.go.
//
// Errors are returned as a structured envelope
// {"error":{"code":"...","message":"...","field":"..."}} with 400 for
// malformed requests, 404 for unknown resources, 422 for semantically
// invalid parameters (field names the offending request field), and 504
// when a request exceeds its timeout_ms deadline.
// Every API endpoint is wrapped in middleware that records request counts,
// status codes, and latency histograms into the internal/obs registry
// served at GET /metrics.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"comparesets/internal/aspectex"
	"comparesets/internal/batchexec"
	"comparesets/internal/core"
	"comparesets/internal/dataset"
	"comparesets/internal/explain"
	"comparesets/internal/faultinject"
	"comparesets/internal/featstore"
	"comparesets/internal/lexicon"
	"comparesets/internal/metrics"
	"comparesets/internal/model"
	"comparesets/internal/obs"
	"comparesets/internal/servecache"
	"comparesets/internal/simgraph"
	"comparesets/internal/store"
	"comparesets/internal/summarize"
)

// DefaultCacheBytes is the select result cache budget when Options leaves
// CacheBytes unset.
const DefaultCacheBytes int64 = 64 << 20

// Options tunes the serving accelerators.
type Options struct {
	// CacheBytes is the byte budget of the select result cache; ≤ 0 uses
	// DefaultCacheBytes.
	CacheBytes int64
	// CacheDisabled turns off the result cache and request coalescing.
	// Corpus-resident feature precompute stays on either way — it only
	// changes where feature columns come from, never what is computed.
	CacheDisabled bool
	// MaxInflight bounds concurrently executing select requests; excess
	// requests wait in a bounded queue and are shed with 503 + Retry-After
	// when the queue is full or the expected wait exceeds their deadline.
	// ≤ 0 disables admission control.
	MaxInflight int
	// MaxQueue bounds the admission wait queue; 0 defaults to
	// 4×MaxInflight, negative disables queueing entirely (requests beyond
	// MaxInflight are shed immediately).
	MaxQueue int
	// StoreProbe, when set, is consulted by /readyz: a non-nil error marks
	// the backing review store unhealthy and the server degraded.
	StoreProbe func() error
	// BatchWindow enables request batching on the corpus-referenced select
	// path: a cold request waits up to this long for merely-similar
	// requests (same corpus and selection shape, different targets) to
	// arrive, then the whole group executes once, sharing a feature-slab
	// pass and per-item regression problems. 0 disables batching — the
	// default, since the window adds up to BatchWindow of latency to
	// isolated cold requests. Requires the cache path (no effect when
	// CacheDisabled).
	BatchWindow time.Duration
	// BatchMax seals a batch group early once this many members have
	// joined, instead of waiting out the window. ≤ 0 means no size cap.
	BatchMax int
	// Float32 serves selections in compact feature mode: float32 feature
	// and distance slabs with float64 accumulation (core.Config.Float32).
	Float32 bool
	// MutationLog, when set, makes corpus mutations durable: every
	// successful mutation endpoint call appends a typed record to this CSLG
	// store before the in-memory corpus swap (write-ahead ordering), so a
	// restart can replay the post-mutation state. The store must hold the
	// mutated corpora's reviews (e.g. via store.AppendCorpus at load time);
	// nil keeps mutations in-memory only.
	MutationLog *store.Store
}

// Server serves the selection API over a set of loaded corpora.
type Server struct {
	mu      sync.RWMutex
	corpora map[string]*model.Corpus
	// feats holds each corpus's resident precomputed features; epochs
	// holds the cache-key epoch token bumped whenever AddCorpus replaces a
	// corpus, which atomically invalidates all of its cached results.
	feats map[string]*featstore.Store
	// problems holds each corpus's shared regression-problem cache
	// (immutable templates; see core.ProblemCache) — replaced together with
	// the feature store so problems never outlive their corpus generation.
	problems map[string]*core.ProblemCache
	epochs   map[string]string
	// gens tracks per-item mutation generations within the current corpus
	// epoch: gens[category][itemID] counts mutations of that item since the
	// corpus was (re)loaded. The select cache key folds in the generations
	// of exactly the instance's members, so a mutation invalidates only
	// cached selections whose instance contains the touched item —
	// everything else stays warm. AddCorpus resets the map: the epoch bump
	// already invalidates the whole category.
	gens     map[string]map[string]uint64
	epochSeq uint64
	started  time.Time
	logger   *log.Logger
	reg      *obs.Registry
	// cache and flights are nil when Options.CacheDisabled; staleCache
	// keeps the last good payload per epochless key for
	// stale-while-error serving.
	cache      *servecache.Cache
	flights    *servecache.FlightGroup
	staleCache *servecache.Cache
	// batcher is nil unless Options.BatchWindow > 0 (and the cache path is
	// on); it groups merely-similar cold requests inside their flights.
	batcher *batchexec.Batcher[*batchReq, *batchRes]
	float32 bool
	// limiter is nil unless Options.MaxInflight > 0.
	limiter    *limiter
	storeProbe func() error
	draining   atomic.Bool
	// mutlog is Options.MutationLog (nil = mutations are in-memory only).
	mutlog *store.Store
	// graphs memoizes similarity-graph builders per select shape so a
	// mutation recomputes only the touched items' adjacency rows.
	graphs graphMemo

	clientAborts *obs.Counter
	staleServed  *obs.Counter
	flightPanics *obs.Counter
	// encodeBytes counts response bytes produced by the hand-rolled
	// encoders (writeJSON fast path + cacheable select fills). Cached
	// payloads are counted once, at fill time, not per serve.
	encodeBytes *obs.Counter
}

// New creates a server over the given corpora (keyed by category name)
// with default options, recording metrics into the process-wide
// obs.Default registry so that /metrics also exposes the selection
// pipeline's stage timers.
func New(corpora map[string]*model.Corpus, logger *log.Logger) *Server {
	return NewWithOptions(corpora, logger, Options{})
}

// NewWithOptions is New with explicit serving-accelerator options.
func NewWithOptions(corpora map[string]*model.Corpus, logger *log.Logger, opts Options) *Server {
	if logger == nil {
		logger = log.Default()
	}
	s := &Server{
		corpora:  map[string]*model.Corpus{},
		feats:    map[string]*featstore.Store{},
		problems: map[string]*core.ProblemCache{},
		epochs:   map[string]string{},
		gens:     map[string]map[string]uint64{},
		started:  time.Now(),
		logger:   logger,
		reg:      obs.Default(),
		mutlog:   opts.MutationLog,
	}
	s.graphs.m = map[string]*graphEntry{}
	s.clientAborts = s.reg.Counter("comparesets_client_aborts_total",
		"Responses whose write failed because the client disconnected.", nil)
	s.staleServed = s.reg.Counter("comparesets_degraded_responses_total",
		"Stale-while-error responses served from the last good cached result.",
		obs.Labels{"reason": "stale_cache"})
	s.flightPanics = s.reg.Counter("comparesets_http_panics_total",
		"Handler panics recovered by the middleware.", obs.Labels{"endpoint": "select.flight"})
	s.encodeBytes = s.reg.Counter("comparesets_encode_bytes_total",
		"Response JSON bytes produced by the pooled hand-rolled encoders.", nil)
	s.storeProbe = opts.StoreProbe
	if opts.MaxInflight > 0 {
		maxQueue := opts.MaxQueue
		if maxQueue == 0 {
			maxQueue = 4 * opts.MaxInflight
		}
		s.limiter = newLimiter(opts.MaxInflight, maxQueue, s.reg)
	}
	if !opts.CacheDisabled {
		bytes := opts.CacheBytes
		if bytes <= 0 {
			bytes = DefaultCacheBytes
		}
		s.cache = servecache.New(bytes, 0, obs.NewCacheMetrics(s.reg, "servecache"))
		s.flights = servecache.NewFlightGroup(obs.NewCacheMetrics(s.reg, "selectflight"))
		staleBytes := bytes / 8
		if staleBytes < 1<<20 {
			staleBytes = 1 << 20
		}
		s.staleCache = servecache.New(staleBytes, 0, obs.NewCacheMetrics(s.reg, "stalecache"))
		if opts.BatchWindow > 0 {
			s.batcher = batchexec.New(opts.BatchWindow, opts.BatchMax,
				batchexec.NewMetrics(s.reg), s.executeBatch)
		}
	}
	s.float32 = opts.Float32
	for name, c := range corpora {
		s.registerCorpus(name, c)
	}
	return s
}

// Registry returns the metrics registry the server records into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Corpus returns the live corpus registered under name. The returned corpus
// is the server's current copy-on-write snapshot: mutations replace it
// rather than modify it, so callers may read it without locking. The
// snapshot-shipping handler uses this to stream a consistent view to
// joining replicas.
func (s *Server) Corpus(name string) (*model.Corpus, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.corpora[name]
	return c, ok
}

// Categories returns the loaded category names in sorted order.
func (s *Server) Categories() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.corpora))
	for name := range s.corpora {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AddCorpus registers (or replaces) a corpus at runtime. The category's
// cache epoch is bumped, so every cached result and precomputed feature of
// a replaced corpus becomes unreachable in one atomic step; stale cache
// entries then age out through the LRU.
func (s *Server) AddCorpus(name string, c *model.Corpus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.registerCorpus(name, c)
}

// registerCorpus installs the corpus, its feature store, and its epoch
// token. Caller holds s.mu (or the server is not yet shared).
func (s *Server) registerCorpus(name string, c *model.Corpus) {
	_, replacing := s.corpora[name]
	s.epochSeq++
	s.corpora[name] = c
	s.feats[name] = featstore.New(c)
	s.problems[name] = core.NewProblemCache()
	s.epochs[name] = fmt.Sprintf("%d.%016x", s.epochSeq, c.Fingerprint())
	// A corpus (re)load is an epoch-scope invalidation: the epoch token in
	// every cache key changes, per-item generations start over, and graph
	// memos for the category are dropped (instance membership may differ).
	s.gens[name] = map[string]uint64{}
	s.graphs.dropCategory(name)
	if replacing {
		s.reg.Counter("comparesets_invalidations_total",
			"Cache invalidations by scope: item (mutation) or epoch (corpus replace).",
			obs.Labels{"scope": "epoch"}).Inc()
	}
}

// Handler returns the HTTP handler with all API and operational routes
// mounted. Every /api and /healthz route is instrumented.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.Handle("GET /readyz", s.instrument("readyz", s.handleReady))
	mux.Handle("GET /api/v1/categories", s.instrument("categories", s.handleCategories))
	mux.Handle("GET /api/v1/targets", s.instrument("targets", s.handleTargets))
	mux.Handle("POST /api/v1/select", s.instrument("select", s.handleSelect))
	mux.Handle("POST /api/v1/extract", s.instrument("extract", s.handleExtract))
	// Mutation endpoints deliberately bypass the select admission limiter:
	// writes are cheap (one item's refill), and shedding them under read
	// load would let a busy cache starve corpus freshness.
	mux.Handle("POST /api/v1/corpora/{category}/items/{item}/reviews",
		s.instrument("mutate", s.handleAppendReviews))
	mux.Handle("PATCH /api/v1/corpora/{category}/items/{item}/reviews/{review}",
		s.instrument("mutate", s.handleUpdateReview))
	mux.Handle("DELETE /api/v1/corpora/{category}/items/{item}/reviews/{review}",
		s.instrument("mutate", s.handleRemoveReview))
	obs.RegisterOps(mux, s.reg)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"uptime": time.Since(s.started).String(),
	})
}

// Readiness states reported by /readyz.
const (
	// ReadyOK: serving normally.
	ReadyOK = "ok"
	// ReadyDegraded: serving, but impaired — the backing store probe
	// fails, or no corpora are loaded (the latter also answers 503 so load
	// balancers route elsewhere).
	ReadyDegraded = "degraded"
	// ReadyOverloaded: not accepting more load — the admission queue is
	// saturated or the server is draining for shutdown (503 + Retry-After).
	ReadyOverloaded = "overloaded"
)

// SetDraining flips the drain flag consulted by /readyz. Flip it before
// http.Server.Shutdown so load balancers stop routing new traffic while
// in-flight requests finish.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Readiness evaluates the readiness state machine: overloaded (draining or
// admission queue saturated) takes precedence over degraded (store
// unhealthy, or no corpora loaded), else ok. The checks map explains every
// contributing probe.
func (s *Server) Readiness() (state string, checks map[string]string) {
	s.mu.RLock()
	ncorpora := len(s.corpora)
	s.mu.RUnlock()
	state = ReadyOK
	checks = map[string]string{}

	checks["corpora"] = fmt.Sprintf("%d loaded", ncorpora)
	if ncorpora == 0 {
		checks["corpora"] = "none loaded"
		state = ReadyDegraded
	}
	checks["store"] = "unconfigured"
	if s.storeProbe != nil {
		if err := s.storeProbe(); err != nil {
			checks["store"] = err.Error()
			state = ReadyDegraded
		} else {
			checks["store"] = "ok"
		}
	}
	checks["limiter"] = "disabled"
	if s.limiter != nil {
		checks["limiter"] = s.limiter.state()
		if s.limiter.saturated() {
			state = ReadyOverloaded
		}
	}
	checks["draining"] = "false"
	if s.draining.Load() {
		checks["draining"] = "true"
		state = ReadyOverloaded
	}
	return state, checks
}

// handleReady serves the readiness probe: 200 for ok, 200 for degraded
// (the server still answers what it can), 503 for overloaded or for a
// degraded server with nothing loaded at all.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	state, checks := s.Readiness()
	status := http.StatusOK
	if state == ReadyOverloaded || checks["corpora"] == "none loaded" {
		status = http.StatusServiceUnavailable
	}
	if state == ReadyOverloaded {
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSON(w, status, map[string]any{"status": state, "checks": checks})
}

// CategoryInfo is one row of the categories listing.
type CategoryInfo struct {
	Name     string `json:"name"`
	Products int    `json:"products"`
	Reviews  int    `json:"reviews"`
	Targets  int    `json:"targets"`
}

func (s *Server) handleCategories(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []CategoryInfo
	for name, c := range s.corpora {
		st := dataset.Compute(c)
		out = append(out, CategoryInfo{
			Name: name, Products: st.Products, Reviews: st.Reviews, Targets: st.TargetProducts,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	category := r.URL.Query().Get("category")
	s.mu.RLock()
	c, ok := s.corpora[category]
	s.mu.RUnlock()
	if !ok {
		s.writeAPIError(w, notFound("unknown category %q", category))
		return
	}
	s.writeJSON(w, http.StatusOK, dataset.TargetIDs(c))
}

// SelectRequest is the /api/v1/select request body.
type SelectRequest struct {
	// Category + Target reference a loaded corpus...
	Category string `json:"category,omitempty"`
	Target   string `json:"target,omitempty"`
	// ...or Items + Aspects supply an inline instance (Items[0] = target).
	Aspects []string      `json:"aspects,omitempty"`
	Items   []*model.Item `json:"items,omitempty"`

	// Algorithm defaults to "CompaReSetS+".
	Algorithm string  `json:"algorithm,omitempty"`
	M         int     `json:"m"`
	Lambda    float64 `json:"lambda"`
	Mu        float64 `json:"mu"`
	// MaxComparative truncates the also-bought list (0 = full).
	MaxComparative int `json:"max_comparative,omitempty"`
	// K > 0 additionally shortlists with the given method
	// ("exact", "greedy", "topk", "random"; default "greedy").
	K      int    `json:"k,omitempty"`
	Method string `json:"method,omitempty"`
	// Summarize > 0 adds up to that many extracted summary sentences per
	// item; Explain > 0 adds up to that many comparative explanation
	// lines.
	Summarize int `json:"summarize,omitempty"`
	Explain   int `json:"explain,omitempty"`
	// Metrics requests the §5.1 selection-quality scores in the response.
	Metrics bool `json:"metrics,omitempty"`
	// TimeoutMS bounds the request's total processing time; when the
	// deadline passes, the selection is cancelled at its next checkpoint
	// and the request fails with 504/deadline_exceeded. 0 means no
	// per-request deadline beyond the client connection's.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// SelectedReview is one chosen review in the response.
type SelectedReview struct {
	ID     string `json:"id"`
	Rating int    `json:"rating"`
	Text   string `json:"text"`
}

// SelectedItem is one item with its selected reviews.
type SelectedItem struct {
	ID       string           `json:"id"`
	Title    string           `json:"title"`
	IsTarget bool             `json:"is_target"`
	Reviews  []SelectedReview `json:"reviews"`
	// Summary holds extracted summary sentences when requested.
	Summary []string `json:"summary,omitempty"`
}

// SelectResponse is the /api/v1/select response body.
type SelectResponse struct {
	Algorithm string         `json:"algorithm"`
	Objective float64        `json:"objective"`
	Items     []SelectedItem `json:"items"`
	// Shortlist holds instance positions when K > 0.
	Shortlist       []int   `json:"shortlist,omitempty"`
	ShortlistWeight float64 `json:"shortlist_weight,omitempty"`
	// Optimal is present (and false) only when the exact shortlist solver
	// was shed — by its time budget, the request deadline, or server
	// overload — and a greedy/best-so-far result is served instead.
	// Optimal exact solves and non-exact methods omit it.
	Optimal *bool `json:"optimal,omitempty"`
	// Degraded marks a stale-while-error response: the pipeline failed and
	// this payload is the last good (possibly previous-epoch) cached
	// result for the same request shape.
	Degraded bool `json:"degraded,omitempty"`
	// Explanations holds comparative explanation lines when requested.
	Explanations []string `json:"explanations,omitempty"`
	// Metrics holds the §5.1 quality scores when requested.
	Metrics   *metrics.InstanceMetrics `json:"metrics,omitempty"`
	ElapsedMS float64                  `json:"elapsed_ms"`
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	// Admission control first: a request we cannot serve in time should
	// cost one queue probe, not a decoded body and a pipeline slot.
	if s.limiter != nil {
		release, aerr := s.limiter.acquire(r.Context())
		if aerr != nil {
			s.writeAPIError(w, aerr)
			return
		}
		defer release()
	}
	var req SelectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeAPIError(w, badRequest("decoding request: %v", err))
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	// Canonicalize and validate the request-shaping parameters up front:
	// they are part of the cache key, and invalid requests must never
	// occupy a flight. Validation failures name the offending field in the
	// error envelope.
	if ae := validateSelectRequest(&req); ae != nil {
		s.writeAPIError(w, ae)
		return
	}
	if req.Algorithm == "" {
		req.Algorithm = "CompaReSetS+"
	}
	sel, ok := core.SelectorByName(req.Algorithm)
	if !ok {
		s.writeAPIError(w, fieldError("algorithm", "unknown algorithm %q", req.Algorithm))
		return
	}
	var solver simgraph.Solver
	if req.K > 0 {
		if req.Method == "" {
			req.Method = "greedy"
		}
		var err error
		if solver, err = solverFor(req.Method); err != nil {
			s.writeAPIError(w, fieldError("method", "%v", err))
			return
		}
	}

	// Corpus-referenced requests ride the full accelerator: result cache,
	// then request coalescing, then the precompute-backed pipeline. The
	// instance is resolved up front, inside the same lock snapshot as the
	// epoch and generation reads: the cache key folds in the mutation
	// generations of exactly the instance's members, so key and instance
	// must come from one consistent corpus view.
	if s.cache != nil && req.Category != "" && req.Target != "" {
		s.mu.RLock()
		c, ok := s.corpora[req.Category]
		fs := s.feats[req.Category]
		pc := s.problems[req.Category]
		base := s.epochs[req.Category]
		epoch := base
		var inst *model.Instance
		var instErr error
		if ok {
			if inst, instErr = c.NewInstance(req.Target, req.MaxComparative); instErr == nil {
				epoch = instanceEpoch(base, s.gens[req.Category], inst)
			}
		}
		s.mu.RUnlock()
		if !ok {
			s.writeAPIError(w, notFound("unknown category %q", req.Category))
			return
		}
		if instErr != nil {
			s.writeAPIError(w, notFound("%v", instErr))
			return
		}
		key := selectKey(&req, epoch)
		staleKey := selectKey(&req, "")
		if body, hit := s.cache.Get(key); hit {
			s.writeRawJSON(w, body)
			return
		}
		body, _, err := s.flights.Do(ctx, key, func(fctx context.Context) ([]byte, error) {
			// Coalescing has already collapsed identical requests into this
			// flight; with batching on, the flight joins a group of
			// merely-similar requests (same shape, different targets) that
			// executes once, sharing slab and problem work.
			if s.batcher != nil {
				// The group key uses the base epoch: members differ by
				// target, so per-instance generation suffixes would split
				// otherwise batchable groups.
				res, _, err := s.batcher.Submit(fctx, batchKey(&req, base), &batchReq{
					ctx: fctx, req: &req, inst: inst, corpus: c, sel: sel, solver: solver,
				})
				if err != nil {
					return nil, err
				}
				if res.err != nil {
					return nil, res.err
				}
				if res.cacheable {
					s.cache.Put(key, res.payload)
					s.staleCache.Put(staleKey, res.payload)
				}
				return res.payload, nil
			}
			resp, apiErr := s.computeSelect(fctx, &req, inst, fs, sel, solver, pc, staleKey)
			if apiErr != nil {
				return nil, apiErr
			}
			// Pooled-scratch encoding with writeJSON's trailing-newline
			// framing baked in, so cached and fresh responses stay
			// byte-identical.
			payload := s.encodeSelectPayload(resp)
			// Degraded results (shed exact solves) are correct but not
			// canonical: caching them would freeze the degradation.
			if resp.Optimal == nil {
				s.cache.Put(key, payload)
				// The stale copy is keyed without the epoch so it stays
				// reachable after AddCorpus bumps it — by design:
				// stale-while-error may serve previous-epoch data, flagged.
				s.staleCache.Put(staleKey, payload)
			}
			return payload, nil
		})
		if err != nil {
			ae := asAPIError(err)
			if ae.code == CodeInternal {
				// A panicking flight is a recovered panic too: account for
				// it like the middleware does for direct handlers.
				var pe *servecache.PanicError
				if errors.As(err, &pe) {
					s.flightPanics.Inc()
					s.logger.Printf("panic in select flight: %v\n%s", pe.Value, pe.Stack)
				}
				// Stale-while-error: a 5xx pipeline failure on a key we have
				// served before returns the last good payload, flagged.
				if stale, ok := s.staleCache.Get(staleKey); ok {
					s.staleServed.Inc()
					s.writeRawJSON(w, degradeBody(stale))
					return
				}
			}
			s.writeAPIError(w, ae)
			return
		}
		s.writeRawJSON(w, body)
		return
	}

	// Inline instances and cache-disabled servers take the direct path
	// (still precompute-backed for corpus references). The shared problem
	// cache applies only to corpus-backed requests: inline items are
	// request-scoped, so caching their problems would pin dead instances.
	inst, fs, apiErr := s.resolveInstance(&req)
	if apiErr != nil {
		s.writeAPIError(w, apiErr)
		return
	}
	var pc *core.ProblemCache
	if fs != nil {
		s.mu.RLock()
		pc = s.problems[req.Category]
		s.mu.RUnlock()
	}
	resp, apiErr := s.computeSelect(ctx, &req, inst, fs, sel, solver, pc, "")
	if apiErr != nil {
		s.writeAPIError(w, apiErr)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// validateSelectRequest checks the numeric request parameters up front,
// returning a 422 naming the offending field. The core pipeline would
// reject most of these too, but only after occupying a flight — and
// without telling the client which field to fix.
func validateSelectRequest(req *SelectRequest) *apiError {
	if req.M < 1 {
		return fieldError("m", "m must be at least 1, got %d", req.M)
	}
	if req.Lambda < 0 {
		return fieldError("lambda", "lambda must be non-negative, got %g", req.Lambda)
	}
	if req.Mu < 0 {
		return fieldError("mu", "mu must be non-negative, got %g", req.Mu)
	}
	if req.K < 0 {
		return fieldError("k", "k must be non-negative, got %d", req.K)
	}
	if req.MaxComparative < 0 {
		return fieldError("max_comparative", "max_comparative must be non-negative, got %d", req.MaxComparative)
	}
	if req.Summarize < 0 {
		return fieldError("summarize", "summarize must be non-negative, got %d", req.Summarize)
	}
	if req.Explain < 0 {
		return fieldError("explain", "explain must be non-negative, got %d", req.Explain)
	}
	if req.TimeoutMS < 0 {
		return fieldError("timeout_ms", "timeout_ms must be non-negative, got %d", req.TimeoutMS)
	}
	return nil
}

// degradeBody marks a cached select payload as degraded by splicing
// "degraded":true into the (always non-empty) top-level object, keeping
// the rest of the bytes exactly as originally served.
func degradeBody(body []byte) []byte {
	const marker = `"degraded":true,`
	out := make([]byte, 0, len(body)+len(marker))
	out = append(out, '{')
	out = append(out, marker...)
	return append(out, body[1:]...)
}

// computeSelect runs the full selection pipeline for a validated request:
// selection, response assembly, optional summaries/explanations/metrics,
// and the optional shortlist solve. fs supplies corpus-resident features
// (nil for inline instances); solver is non-nil exactly when req.K > 0;
// problems is the batch group's shared problem cache (nil outside batched
// execution); graphKey, when non-empty, memoizes the shortlist similarity
// graph's distance matrix across requests of the same shape (see
// memoGraph).
func (s *Server) computeSelect(ctx context.Context, req *SelectRequest, inst *model.Instance, fs *featstore.Store, sel core.Selector, solver simgraph.Solver, problems *core.ProblemCache, graphKey string) (*SelectResponse, *apiError) {
	cfg := core.Config{M: req.M, Lambda: req.Lambda, Mu: req.Mu, Float32: s.float32, Problems: problems}
	if fs != nil {
		cfg.Features = fs
	}
	if err := faultinject.CheckCtx(ctx, faultinject.PointServiceSelect); err != nil {
		return nil, asAPIError(err)
	}
	start := time.Now()
	selection, err := sel.SelectContext(ctx, inst, cfg)
	if err != nil {
		return nil, asAPIError(err)
	}
	resp := &SelectResponse{
		Algorithm: sel.Name(),
		Objective: selection.Objective,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	sets := selection.Reviews(inst)
	for i, it := range inst.Items {
		item := SelectedItem{ID: it.ID, Title: it.Title, IsTarget: i == 0}
		for _, rv := range sets[i] {
			item.Reviews = append(item.Reviews, SelectedReview{ID: rv.ID, Rating: rv.Rating, Text: rv.Text})
		}
		if req.Summarize > 0 {
			item.Summary = summarize.Reviews(sets[i], summarize.Options{MaxSentences: req.Summarize})
		}
		resp.Items = append(resp.Items, item)
	}
	if req.Explain > 0 {
		resp.Explanations = explain.Lines(explain.Compare(inst, selection), req.Explain)
	}
	if req.Metrics {
		m := metrics.EvaluateSelection(inst, selection)
		resp.Metrics = &m
	}
	if solver != nil {
		tg := core.NewTargets(inst, cfg)
		g := s.memoGraph(graphKey, req.Category, core.StatsForSets(inst, tg, cfg, sets), cfg)
		shortlistSpan := obs.StartStage(obs.StageShortlist)
		res, reason := s.solveShortlist(ctx, g, req.K, solver, req.Method)
		shortlistSpan.Stop()
		if err := ctx.Err(); err != nil {
			return nil, asAPIError(err)
		}
		if reason != "" {
			f := false
			resp.Optimal = &f
			s.reg.Counter("comparesets_shortlist_fallback_total",
				"Exact shortlist solves degraded to greedy or best-so-far.",
				obs.Labels{"reason": reason}).Inc()
		}
		resp.Shortlist = res.Members
		resp.ShortlistWeight = res.Weight
	}
	return resp, nil
}

// exactMinHeadroom is the least remaining request deadline worth starting
// an exact branch-and-bound solve with; anything shorter goes straight to
// greedy.
const exactMinHeadroom = 50 * time.Millisecond

// solveShortlist runs the requested shortlist solver, degrading exact
// solves down the ladder when the server cannot afford them: under
// admission-queue pressure ("overload") or with too little deadline left
// ("deadline") it serves greedy instead; an exact solve that exhausts its
// internal budget reports "budget". A non-empty reason means the result is
// feasible but not proven optimal. Non-exact methods never degrade.
func (s *Server) solveShortlist(ctx context.Context, g *simgraph.Graph, k int, solver simgraph.Solver, method string) (simgraph.Result, string) {
	if method != "exact" && method != "ilp" {
		return solver.SolveContext(ctx, g, k), ""
	}
	if s.limiter != nil && s.limiter.busy() {
		return simgraph.Greedy{}.SolveContext(ctx, g, k), "overload"
	}
	if d, ok := ctx.Deadline(); ok && time.Until(d) < exactMinHeadroom {
		return simgraph.Greedy{}.SolveContext(ctx, g, k), "deadline"
	}
	res := solver.SolveContext(ctx, g, k)
	if !res.Optimal {
		return res, "budget"
	}
	return res, ""
}

func solverFor(method string) (simgraph.Solver, error) {
	switch method {
	case "exact", "ilp":
		return simgraph.Exact{Budget: 10 * time.Second}, nil
	case "greedy":
		return simgraph.Greedy{}, nil
	case "topk":
		return simgraph.TopK{}, nil
	case "random":
		return simgraph.RandomShortlist{}, nil
	default:
		return nil, fmt.Errorf("unknown shortlist method %q", method)
	}
}

// resolveInstance builds the problem instance from either a corpus
// reference or the inline items, returning the category's feature store
// for corpus references (nil for inline instances).
func (s *Server) resolveInstance(req *SelectRequest) (*model.Instance, *featstore.Store, *apiError) {
	switch {
	case req.Category != "" && req.Target != "":
		s.mu.RLock()
		c, ok := s.corpora[req.Category]
		fs := s.feats[req.Category]
		s.mu.RUnlock()
		if !ok {
			return nil, nil, notFound("unknown category %q", req.Category)
		}
		inst, err := c.NewInstance(req.Target, req.MaxComparative)
		if err != nil {
			return nil, nil, notFound("%v", err)
		}
		return inst, fs, nil
	case len(req.Items) > 0:
		if len(req.Aspects) == 0 {
			return nil, nil, unprocessable(fmt.Errorf("inline instances need a non-empty aspects list"))
		}
		inst := &model.Instance{Aspects: model.NewVocabulary(req.Aspects), Items: req.Items}
		if err := inst.Validate(); err != nil {
			return nil, nil, unprocessable(err)
		}
		return inst, nil, nil
	default:
		return nil, nil, badRequest("provide either category+target or inline items")
	}
}

// ExtractRequest is the /api/v1/extract request body.
type ExtractRequest struct {
	Category string `json:"category"`
	Text     string `json:"text"`
}

// ExtractResponse is the /api/v1/extract response body.
type ExtractResponse struct {
	Mentions []MentionJSON `json:"mentions"`
}

// MentionJSON is one extracted mention with a resolved aspect name.
type MentionJSON struct {
	Aspect   int     `json:"aspect"`
	Name     string  `json:"name"`
	Polarity string  `json:"polarity"`
	Score    float64 `json:"score"`
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	var req ExtractRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeAPIError(w, badRequest("decoding request: %v", err))
		return
	}
	cat, ok := lexicon.CategoryByName(req.Category)
	if !ok {
		s.writeAPIError(w, notFound("unknown category %q", req.Category))
		return
	}
	var resp ExtractResponse
	for _, m := range aspectex.New(cat).Extract(req.Text) {
		resp.Mentions = append(resp.Mentions, MentionJSON{
			Aspect:   m.Aspect,
			Name:     cat.Aspects[m.Aspect].Name,
			Polarity: m.Polarity.String(),
			Score:    m.Score,
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// writeJSONReflect is the reflection fallback behind writeJSON for shapes
// without a hand-rolled encoder (see encode.go).
func (s *Server) writeJSONReflect(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Encoding of our own response types cannot fail; a write error
		// means the client went away mid-response.
		s.clientAborts.Inc()
	}
}

// writeRawJSON writes a pre-marshaled JSON payload (already carrying the
// trailing newline that json.Encoder emits, so cached and freshly encoded
// responses are byte-identical).
func (s *Server) writeRawJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(body); err != nil {
		s.clientAborts.Inc()
	}
}

// writeAPIError renders the error envelope, attaching Retry-After for shed
// requests and logging (never leaking) the details of 5xx-class failures.
func (s *Server) writeAPIError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	if e.status >= 500 && e.err != nil {
		s.logger.Printf("%s (%d): %v", e.code, e.status, e.err)
	}
	s.writeJSON(w, e.status, ErrorResponse{Error: ErrorBody{Code: e.code, Message: e.message(), Field: e.field}})
}
