// Package service exposes comparative review selection as an HTTP JSON API
// — the shape a storefront backend would deploy: load (or synthesize)
// corpora at startup, then answer per-target selection and shortlist
// queries, which are independent and served concurrently (§4.1.1).
//
// Endpoints:
//
//	GET  /healthz                     liveness probe
//	GET  /api/v1/categories           loaded corpus names + stats
//	GET  /api/v1/targets?category=X   qualifying target product IDs
//	POST /api/v1/select               select review sets (+ optional shortlist)
//	POST /api/v1/extract              aspect-sentiment extraction for raw text
//	GET  /metrics                     Prometheus text exposition
//	GET  /debug/vars                  expvar JSON
//	GET  /debug/pprof/*               runtime profiles
//
// Errors are returned as a structured envelope
// {"error":{"code":"...","message":"..."}} with 400 for malformed
// requests, 404 for unknown resources, 422 for semantically invalid
// parameters, and 504 when a request exceeds its timeout_ms deadline.
// Every API endpoint is wrapped in middleware that records request counts,
// status codes, and latency histograms into the internal/obs registry
// served at GET /metrics.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"comparesets/internal/aspectex"
	"comparesets/internal/core"
	"comparesets/internal/dataset"
	"comparesets/internal/explain"
	"comparesets/internal/lexicon"
	"comparesets/internal/metrics"
	"comparesets/internal/model"
	"comparesets/internal/obs"
	"comparesets/internal/simgraph"
	"comparesets/internal/summarize"
)

// Server serves the selection API over a set of loaded corpora.
type Server struct {
	mu      sync.RWMutex
	corpora map[string]*model.Corpus
	started time.Time
	logger  *log.Logger
	reg     *obs.Registry
}

// New creates a server over the given corpora (keyed by category name),
// recording metrics into the process-wide obs.Default registry so that
// /metrics also exposes the selection pipeline's stage timers.
func New(corpora map[string]*model.Corpus, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.Default()
	}
	s := &Server{
		corpora: map[string]*model.Corpus{},
		started: time.Now(),
		logger:  logger,
		reg:     obs.Default(),
	}
	for name, c := range corpora {
		s.corpora[name] = c
	}
	return s
}

// Registry returns the metrics registry the server records into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// AddCorpus registers (or replaces) a corpus at runtime.
func (s *Server) AddCorpus(name string, c *model.Corpus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.corpora[name] = c
}

// Handler returns the HTTP handler with all API and operational routes
// mounted. Every /api and /healthz route is instrumented.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.Handle("GET /api/v1/categories", s.instrument("categories", s.handleCategories))
	mux.Handle("GET /api/v1/targets", s.instrument("targets", s.handleTargets))
	mux.Handle("POST /api/v1/select", s.instrument("select", s.handleSelect))
	mux.Handle("POST /api/v1/extract", s.instrument("extract", s.handleExtract))
	obs.RegisterOps(mux, s.reg)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"uptime": time.Since(s.started).String(),
	})
}

// CategoryInfo is one row of the categories listing.
type CategoryInfo struct {
	Name     string `json:"name"`
	Products int    `json:"products"`
	Reviews  int    `json:"reviews"`
	Targets  int    `json:"targets"`
}

func (s *Server) handleCategories(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []CategoryInfo
	for name, c := range s.corpora {
		st := dataset.Compute(c)
		out = append(out, CategoryInfo{
			Name: name, Products: st.Products, Reviews: st.Reviews, Targets: st.TargetProducts,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	category := r.URL.Query().Get("category")
	s.mu.RLock()
	c, ok := s.corpora[category]
	s.mu.RUnlock()
	if !ok {
		writeAPIError(w, notFound("unknown category %q", category))
		return
	}
	writeJSON(w, http.StatusOK, dataset.TargetIDs(c))
}

// SelectRequest is the /api/v1/select request body.
type SelectRequest struct {
	// Category + Target reference a loaded corpus...
	Category string `json:"category,omitempty"`
	Target   string `json:"target,omitempty"`
	// ...or Items + Aspects supply an inline instance (Items[0] = target).
	Aspects []string      `json:"aspects,omitempty"`
	Items   []*model.Item `json:"items,omitempty"`

	// Algorithm defaults to "CompaReSetS+".
	Algorithm string  `json:"algorithm,omitempty"`
	M         int     `json:"m"`
	Lambda    float64 `json:"lambda"`
	Mu        float64 `json:"mu"`
	// MaxComparative truncates the also-bought list (0 = full).
	MaxComparative int `json:"max_comparative,omitempty"`
	// K > 0 additionally shortlists with the given method
	// ("exact", "greedy", "topk", "random"; default "greedy").
	K      int    `json:"k,omitempty"`
	Method string `json:"method,omitempty"`
	// Summarize > 0 adds up to that many extracted summary sentences per
	// item; Explain > 0 adds up to that many comparative explanation
	// lines.
	Summarize int `json:"summarize,omitempty"`
	Explain   int `json:"explain,omitempty"`
	// Metrics requests the §5.1 selection-quality scores in the response.
	Metrics bool `json:"metrics,omitempty"`
	// TimeoutMS bounds the request's total processing time; when the
	// deadline passes, the selection is cancelled at its next checkpoint
	// and the request fails with 504/deadline_exceeded. 0 means no
	// per-request deadline beyond the client connection's.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// SelectedReview is one chosen review in the response.
type SelectedReview struct {
	ID     string `json:"id"`
	Rating int    `json:"rating"`
	Text   string `json:"text"`
}

// SelectedItem is one item with its selected reviews.
type SelectedItem struct {
	ID       string           `json:"id"`
	Title    string           `json:"title"`
	IsTarget bool             `json:"is_target"`
	Reviews  []SelectedReview `json:"reviews"`
	// Summary holds extracted summary sentences when requested.
	Summary []string `json:"summary,omitempty"`
}

// SelectResponse is the /api/v1/select response body.
type SelectResponse struct {
	Algorithm string         `json:"algorithm"`
	Objective float64        `json:"objective"`
	Items     []SelectedItem `json:"items"`
	// Shortlist holds instance positions when K > 0.
	Shortlist       []int   `json:"shortlist,omitempty"`
	ShortlistWeight float64 `json:"shortlist_weight,omitempty"`
	// Explanations holds comparative explanation lines when requested.
	Explanations []string `json:"explanations,omitempty"`
	// Metrics holds the §5.1 quality scores when requested.
	Metrics   *metrics.InstanceMetrics `json:"metrics,omitempty"`
	ElapsedMS float64                  `json:"elapsed_ms"`
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeAPIError(w, badRequest("decoding request: %v", err))
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	inst, apiErr := s.resolveInstance(&req)
	if apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	if req.Algorithm == "" {
		req.Algorithm = "CompaReSetS+"
	}
	sel, ok := core.SelectorByName(req.Algorithm)
	if !ok {
		writeAPIError(w, unprocessable(fmt.Errorf("unknown algorithm %q", req.Algorithm)))
		return
	}
	cfg := core.Config{M: req.M, Lambda: req.Lambda, Mu: req.Mu}
	start := time.Now()
	selection, err := sel.SelectContext(ctx, inst, cfg)
	if err != nil {
		writeAPIError(w, asAPIError(err))
		return
	}
	resp := SelectResponse{
		Algorithm: sel.Name(),
		Objective: selection.Objective,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	sets := selection.Reviews(inst)
	for i, it := range inst.Items {
		item := SelectedItem{ID: it.ID, Title: it.Title, IsTarget: i == 0}
		for _, rv := range sets[i] {
			item.Reviews = append(item.Reviews, SelectedReview{ID: rv.ID, Rating: rv.Rating, Text: rv.Text})
		}
		if req.Summarize > 0 {
			item.Summary = summarize.Reviews(sets[i], summarize.Options{MaxSentences: req.Summarize})
		}
		resp.Items = append(resp.Items, item)
	}
	if req.Explain > 0 {
		resp.Explanations = explain.Lines(explain.Compare(inst, selection), req.Explain)
	}
	if req.Metrics {
		m := metrics.EvaluateSelection(inst, selection)
		resp.Metrics = &m
	}
	if req.K > 0 {
		method := req.Method
		if method == "" {
			method = "greedy"
		}
		solver, err := solverFor(method)
		if err != nil {
			writeAPIError(w, unprocessable(err))
			return
		}
		tg := core.NewTargets(inst, cfg)
		g := simgraph.Build(core.Stats(inst, tg, cfg, selection), cfg)
		shortlistStop := obs.StageTimer(obs.StageShortlist)
		res := solver.SolveContext(ctx, g, req.K)
		shortlistStop()
		if err := ctx.Err(); err != nil {
			writeAPIError(w, asAPIError(err))
			return
		}
		resp.Shortlist = res.Members
		resp.ShortlistWeight = res.Weight
	}
	writeJSON(w, http.StatusOK, resp)
}

func solverFor(method string) (simgraph.Solver, error) {
	switch method {
	case "exact", "ilp":
		return simgraph.Exact{Budget: 10 * time.Second}, nil
	case "greedy":
		return simgraph.Greedy{}, nil
	case "topk":
		return simgraph.TopK{}, nil
	case "random":
		return simgraph.RandomShortlist{}, nil
	default:
		return nil, fmt.Errorf("unknown shortlist method %q", method)
	}
}

// resolveInstance builds the problem instance from either a corpus
// reference or the inline items.
func (s *Server) resolveInstance(req *SelectRequest) (*model.Instance, *apiError) {
	switch {
	case req.Category != "" && req.Target != "":
		s.mu.RLock()
		c, ok := s.corpora[req.Category]
		s.mu.RUnlock()
		if !ok {
			return nil, notFound("unknown category %q", req.Category)
		}
		inst, err := c.NewInstance(req.Target, req.MaxComparative)
		if err != nil {
			return nil, notFound("%v", err)
		}
		return inst, nil
	case len(req.Items) > 0:
		if len(req.Aspects) == 0 {
			return nil, unprocessable(fmt.Errorf("inline instances need a non-empty aspects list"))
		}
		inst := &model.Instance{Aspects: model.NewVocabulary(req.Aspects), Items: req.Items}
		if err := inst.Validate(); err != nil {
			return nil, unprocessable(err)
		}
		return inst, nil
	default:
		return nil, badRequest("provide either category+target or inline items")
	}
}

// ExtractRequest is the /api/v1/extract request body.
type ExtractRequest struct {
	Category string `json:"category"`
	Text     string `json:"text"`
}

// ExtractResponse is the /api/v1/extract response body.
type ExtractResponse struct {
	Mentions []MentionJSON `json:"mentions"`
}

// MentionJSON is one extracted mention with a resolved aspect name.
type MentionJSON struct {
	Aspect   int     `json:"aspect"`
	Name     string  `json:"name"`
	Polarity string  `json:"polarity"`
	Score    float64 `json:"score"`
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	var req ExtractRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeAPIError(w, badRequest("decoding request: %v", err))
		return
	}
	cat, ok := lexicon.CategoryByName(req.Category)
	if !ok {
		writeAPIError(w, notFound("unknown category %q", req.Category))
		return
	}
	var resp ExtractResponse
	for _, m := range aspectex.New(cat).Extract(req.Text) {
		resp.Mentions = append(resp.Mentions, MentionJSON{
			Aspect:   m.Aspect,
			Name:     cat.Aspects[m.Aspect].Name,
			Polarity: m.Polarity.String(),
			Score:    m.Score,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
