package stats_test

import (
	"fmt"

	"comparesets/internal/stats"
)

// ExamplePairedTTest tests whether a method's per-instance scores improve
// significantly over a baseline (the Table 3 significance stars).
func ExamplePairedTTest() {
	method := []float64{0.22, 0.25, 0.23, 0.26, 0.24, 0.27, 0.25, 0.23}
	baseline := []float64{0.20, 0.22, 0.21, 0.23, 0.22, 0.24, 0.22, 0.21}
	res, _ := stats.PairedTTest(method, baseline)
	fmt.Printf("significant at 0.05: %v\n", res.Significant(0.05))
	// Output:
	// significant at 0.05: true
}

// ExampleKrippendorffAlpha measures inter-annotator agreement for Likert
// ratings with missing values (Table 7's reliability column).
func ExampleKrippendorffAlpha() {
	nan := func() float64 { var z float64; return z / z } // NaN marks missing
	ratings := [][]float64{
		{4, 4, nan()},
		{2, 2, 2},
		{5, nan(), 5},
		{3, 3, 4},
	}
	alpha, _ := stats.KrippendorffAlpha(ratings)
	fmt.Printf("alpha = %.2f\n", alpha)
	// Output:
	// alpha = 0.93
}
