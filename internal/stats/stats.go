// Package stats provides the statistical machinery of the evaluation: the
// paired two-sided t-test behind Table 3's significance stars (p < 0.05),
// Krippendorff's alpha-reliability for the user study (Table 7), and the
// descriptive statistics used throughout, all on the standard library
// (regularized incomplete beta function included).
package stats

import (
	"errors"
	"math"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n−1 denominator); slices
// shorter than 2 yield 0.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Errors returned by the tests below.
var (
	ErrLengthMismatch = errors.New("stats: paired samples differ in length")
	ErrTooFewSamples  = errors.New("stats: need at least two pairs")
)

// TTestResult is the outcome of a paired t-test.
type TTestResult struct {
	T  float64 // t statistic
	DF float64 // degrees of freedom (n − 1)
	P  float64 // two-sided p-value
}

// Significant reports whether the difference is significant at level alpha
// (the paper uses 0.05).
func (r TTestResult) Significant(alpha float64) bool { return r.P < alpha }

// PairedTTest runs a two-sided paired t-test on equal-length samples x, y.
// Identical samples (zero variance of differences) yield T=0, P=1.
func PairedTTest(x, y []float64) (TTestResult, error) {
	if len(x) != len(y) {
		return TTestResult{}, ErrLengthMismatch
	}
	n := len(x)
	if n < 2 {
		return TTestResult{}, ErrTooFewSamples
	}
	d := make([]float64, n)
	for i := range x {
		d[i] = x[i] - y[i]
	}
	md := Mean(d)
	sd := StdDev(d)
	df := float64(n - 1)
	if sd == 0 {
		if md == 0 {
			return TTestResult{T: 0, DF: df, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(md)), DF: df, P: 0}, nil
	}
	t := md / (sd / math.Sqrt(float64(n)))
	p := 2 * studentTTail(math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTTail returns P(T > t) for t ≥ 0 under a Student t distribution
// with df degrees of freedom.
func studentTTail(t, df float64) float64 {
	if t < 0 {
		return 1 - studentTTail(-t, df)
	}
	x := df / (df + t*t)
	return 0.5 * RegIncBeta(df/2, 0.5, x)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// via the Lentz continued-fraction expansion (Numerical Recipes §6.4).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// KrippendorffAlpha computes Krippendorff's alpha-reliability with the
// interval difference metric δ²(c,k) = (c−k)², appropriate for Likert
// ratings. ratings[u][o] is observer o's rating of unit u; math.NaN() marks
// a missing rating. Units with fewer than two ratings are ignored. It
// returns an error when no pairable values exist or expected disagreement is
// zero with observed disagreement also zero (alpha undefined → 1 by
// convention is NOT assumed; callers get ErrNoVariation).
func KrippendorffAlpha(ratings [][]float64) (float64, error) {
	// Gather pairable values per unit.
	type unit struct{ vals []float64 }
	var units []unit
	for _, row := range ratings {
		var vals []float64
		for _, v := range row {
			if !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		if len(vals) >= 2 {
			units = append(units, unit{vals})
		}
	}
	if len(units) == 0 {
		return 0, ErrNoPairableValues
	}
	// Observed disagreement via pairwise differences weighted 1/(m_u − 1),
	// and marginal totals for expected disagreement.
	var (
		n      float64
		do     float64
		values []float64
		counts []float64
	)
	idx := map[float64]int{}
	addCount := func(v, w float64) {
		i, ok := idx[v]
		if !ok {
			i = len(values)
			idx[v] = i
			values = append(values, v)
			counts = append(counts, 0)
		}
		counts[i] += w
	}
	for _, u := range units {
		m := float64(len(u.vals))
		n += m
		for _, v := range u.vals {
			addCount(v, 1)
		}
		for i := 0; i < len(u.vals); i++ {
			for j := 0; j < len(u.vals); j++ {
				if i == j {
					continue
				}
				d := u.vals[i] - u.vals[j]
				do += d * d / (m - 1)
			}
		}
	}
	var de float64
	for i := range values {
		for j := range values {
			if i == j {
				continue
			}
			d := values[i] - values[j]
			de += counts[i] * counts[j] * d * d
		}
	}
	if de == 0 {
		return 0, ErrNoVariation
	}
	do /= n
	de /= n * (n - 1)
	return 1 - do/de, nil
}

// Errors returned by KrippendorffAlpha.
var (
	ErrNoPairableValues = errors.New("stats: no unit has two or more ratings")
	ErrNoVariation      = errors.New("stats: ratings have no variation; alpha undefined")
)
