package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !near(got, 5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	// Sample variance with n−1: Σ(x−5)² = 32, 32/7.
	if got := Variance(xs); !near(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); !near(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/singleton cases wrong")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !near(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = x²(3−2x).
	for _, x := range []float64{0.25, 0.5, 0.75} {
		want := x * x * (3 - 2*x)
		if got := RegIncBeta(2, 2, x); !near(got, want, 1e-10) {
			t.Errorf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
	// Boundaries.
	if RegIncBeta(3, 4, 0) != 0 || RegIncBeta(3, 4, 1) != 1 {
		t.Error("boundary values wrong")
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	if got := RegIncBeta(2.5, 3.5, 0.3) + RegIncBeta(3.5, 2.5, 0.7); !near(got, 1, 1e-10) {
		t.Errorf("symmetry sum = %v", got)
	}
}

func TestStudentTTailAgainstTables(t *testing.T) {
	// Critical values: P(T > 2.776) = 0.025 at df=4; P(T > 1.812) = 0.05
	// at df=10; P(T > 2.228) = 0.025 at df=10.
	cases := []struct{ t, df, want float64 }{
		{2.776, 4, 0.025},
		{1.812, 10, 0.05},
		{2.228, 10, 0.025},
		{0, 7, 0.5},
	}
	for _, c := range cases {
		if got := studentTTail(c.t, c.df); !near(got, c.want, 2e-4) {
			t.Errorf("tail(%v, %v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
}

func TestPairedTTestDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 40
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		base := rng.NormFloat64()
		x[i] = base + 0.5 // consistent +0.5 shift
		y[i] = base + rng.NormFloat64()*0.1
	}
	res, err := PairedTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.05) {
		t.Errorf("shift not detected: %+v", res)
	}
	if res.T <= 0 {
		t.Errorf("T = %v, want > 0", res.T)
	}
}

func TestPairedTTestNullCase(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Identical samples: p = 1.
	same := make([]float64, 10)
	for i := range same {
		same[i] = rng.Float64()
	}
	res, err := PairedTTest(same, same)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.T != 0 {
		t.Errorf("identical samples: %+v", res)
	}
}

func TestPairedTTestConstantShiftZeroVariance(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{0, 1, 2} // d ≡ 1, sd = 0
	res, err := PairedTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.T, 1) || res.P != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("err = %v", err)
	}
	if _, err := PairedTTest([]float64{1}, []float64{2}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("err = %v", err)
	}
}

func TestPairedTTestPValueCalibration(t *testing.T) {
	// Under the null, p-values should be roughly uniform: check that the
	// rejection rate at 0.05 is near 5%.
	rng := rand.New(rand.NewSource(77))
	trials, rejected := 2000, 0
	for trial := 0; trial < trials; trial++ {
		n := 12
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		res, err := PairedTTest(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant(0.05) {
			rejected++
		}
	}
	rate := float64(rejected) / float64(trials)
	if rate < 0.02 || rate > 0.09 {
		t.Errorf("null rejection rate = %v, want ≈ 0.05", rate)
	}
}

func nan() float64 { return math.NaN() }

func TestKrippendorffPerfectAgreement(t *testing.T) {
	ratings := [][]float64{
		{1, 1, 1},
		{3, 3, 3},
		{5, 5, 5},
	}
	a, err := KrippendorffAlpha(ratings)
	if err != nil {
		t.Fatal(err)
	}
	if !near(a, 1, 1e-12) {
		t.Errorf("alpha = %v, want 1", a)
	}
}

func TestKrippendorffKnownExample(t *testing.T) {
	// Krippendorff (2011) binary example: two observers, ten units.
	ratings := [][]float64{
		{0, 0}, {1, 1}, {0, 1}, {0, 0}, {0, 0},
		{0, 0}, {0, 0}, {0, 1}, {1, 0}, {0, 0},
	}
	a, err := KrippendorffAlpha(ratings)
	if err != nil {
		t.Fatal(err)
	}
	// Hand computation: D_o = 0.3, n = 20, counts: 15 zeros, 5 ones,
	// D_e = 2·15·5/(20·19) = 0.39473..., alpha = 1 − 0.3/0.394736 ≈ 0.24.
	if !near(a, 1-0.3/(2.0*15*5/(20.0*19)), 1e-9) {
		t.Errorf("alpha = %v", a)
	}
}

func TestKrippendorffHandlesMissing(t *testing.T) {
	ratings := [][]float64{
		{1, 1, nan()},
		{2, nan(), 2},
		{nan(), 4, 4},
		{5, nan(), nan()}, // single rating: ignored
	}
	a, err := KrippendorffAlpha(ratings)
	if err != nil {
		t.Fatal(err)
	}
	if !near(a, 1, 1e-12) {
		t.Errorf("alpha = %v, want 1 (all pairable ratings agree)", a)
	}
}

func TestKrippendorffSystematicDisagreementNegative(t *testing.T) {
	// Observers systematically disagree within units while the overall
	// value distribution is balanced: alpha < 0.
	ratings := [][]float64{
		{1, 5}, {5, 1}, {1, 5}, {5, 1},
	}
	a, err := KrippendorffAlpha(ratings)
	if err != nil {
		t.Fatal(err)
	}
	if a >= 0 {
		t.Errorf("alpha = %v, want negative", a)
	}
}

func TestKrippendorffErrors(t *testing.T) {
	if _, err := KrippendorffAlpha([][]float64{{1, nan()}, {nan(), 2}}); !errors.Is(err, ErrNoPairableValues) {
		t.Errorf("err = %v", err)
	}
	if _, err := KrippendorffAlpha([][]float64{{2, 2}, {2, 2}}); !errors.Is(err, ErrNoVariation) {
		t.Errorf("err = %v", err)
	}
}

func TestKrippendorffOrderingMatchesReliability(t *testing.T) {
	// More annotator noise must lower alpha (shape of Table 7).
	rng := rand.New(rand.NewSource(5))
	gen := func(noise float64) float64 {
		ratings := make([][]float64, 50)
		for u := range ratings {
			truth := float64(1 + rng.Intn(5))
			row := make([]float64, 5)
			for o := range row {
				v := truth + rng.NormFloat64()*noise
				row[o] = math.Round(math.Min(5, math.Max(1, v)))
			}
			ratings[u] = row
		}
		a, err := KrippendorffAlpha(ratings)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	low, high := gen(0.3), gen(3.0)
	if low <= high {
		t.Errorf("alpha(low noise)=%v should exceed alpha(high noise)=%v", low, high)
	}
}
