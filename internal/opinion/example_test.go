package opinion_test

import (
	"fmt"

	"comparesets/internal/model"
	"comparesets/internal/opinion"
)

// ExampleBinary_Vector reproduces Working Example 1: π(S₁) of the optimal
// m=3 subset equals the full-set target τ₁.
func ExampleBinary_Vector() {
	pos := func(a int) model.Mention { return model.Mention{Aspect: a, Polarity: model.Positive} }
	neg := func(a int) model.Mention { return model.Mention{Aspect: a, Polarity: model.Negative} }
	s1 := []*model.Review{
		{ID: "r5", Mentions: []model.Mention{pos(0), pos(1)}},
		{ID: "r6", Mentions: []model.Mention{neg(0), neg(1), pos(2)}},
		{ID: "r7", Mentions: []model.Mention{neg(0), neg(2)}},
	}
	pi := opinion.Binary{}.Vector(s1, 3)
	fmt.Printf("battery+ %.2f battery- %.2f\n", pi[0], pi[1])
	phi := opinion.AspectVector(s1, 3)
	fmt.Printf("phi %.2f %.2f %.2f\n", phi[0], phi[1], phi[2])
	// Output:
	// battery+ 0.33 battery- 0.67
	// phi 1.00 0.67 0.67
}
