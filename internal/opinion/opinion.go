// Package opinion implements the opinion and aspect distribution vectors of
// the paper: π(S) ∈ ℝ₊^{d} (opinion distribution of a review set, §2.1) and
// φ(S) ∈ ℝ₊^{z} (aspect distribution), under three opinion definitions —
// Binary (default), ThreePolarity, and UnaryScale (§4.2.3).
//
// Both vectors follow the normalization of Working Example 1: raw per-aspect
// (or per-opinion) review counts are divided by the maximum aspect occurrence
// count within the set, e.g. φ(R₁) = (6/6, 4/6, 4/6, 0, 0) and
// τ₁ = π(R₁) = (2/6, 4/6, 2/6, 2/6, 2/6, 2/6, 0, 0, 0, 0).
package opinion

import (
	"fmt"
	"math"

	"comparesets/internal/linalg"
	"comparesets/internal/model"
)

// Scheme defines how review sentiments are folded into an opinion vector and
// how a single review contributes a (raw, unnormalized) column to the
// Integer-Regression design matrix.
type Scheme interface {
	// Name identifies the scheme ("binary", "3-polarity", "unary-scale").
	Name() string
	// Dim returns the opinion-vector dimensionality for z aspects.
	Dim(z int) int
	// Column returns the raw opinion contribution of one review: for the
	// counting schemes a 0/1 presence vector, for unary-scale the signed
	// per-aspect sentiment mass.
	Column(r *model.Review, z int) linalg.Vector
	// Vector returns π(S) for a set of reviews.
	Vector(reviews []*model.Review, z int) linalg.Vector
}

// counting marks schemes whose π(S) is countingVector: the sum of the
// per-review Column vectors divided by the set's maximum aspect count.
// Feature caches exploit this to evaluate candidate sets from precomputed
// columns without touching the reviews again.
type counting interface{ isCountingScheme() }

// IsCounting reports whether π(S) under s equals the sum of per-review
// Column vectors normalized by the set's maximum aspect count (true for
// Binary and ThreePolarity; false for UnaryScale, whose aggregation is a
// sigmoid of summed scores).
func IsCounting(s Scheme) bool {
	_, ok := s.(counting)
	return ok
}

// Binary is the default two-polarity scheme: dimension 2z, rows interleaved
// as {a₁⁺, a₁⁻, a₂⁺, a₂⁻, ...}, matching Working Example 1.
type Binary struct{}

func (Binary) isCountingScheme() {}

// Name implements Scheme.
func (Binary) Name() string { return "binary" }

// Dim implements Scheme.
func (Binary) Dim(z int) int { return 2 * z }

// Column implements Scheme: entry 2a (resp. 2a+1) is 1 iff the review holds
// a positive (resp. negative) opinion on aspect a. Neutral mentions do not
// contribute.
func (Binary) Column(r *model.Review, z int) linalg.Vector {
	col := linalg.NewVector(2 * z)
	for _, m := range r.Mentions {
		switch m.Polarity {
		case model.Positive:
			col[2*m.Aspect] = 1
		case model.Negative:
			col[2*m.Aspect+1] = 1
		}
	}
	return col
}

// Vector implements Scheme.
func (b Binary) Vector(reviews []*model.Review, z int) linalg.Vector {
	return countingVector(b, reviews, z)
}

// ThreePolarity adds a neutral row per aspect: dimension 3z, rows
// {a⁺, a⁻, a⁰} per aspect.
type ThreePolarity struct{}

func (ThreePolarity) isCountingScheme() {}

// Name implements Scheme.
func (ThreePolarity) Name() string { return "3-polarity" }

// Dim implements Scheme.
func (ThreePolarity) Dim(z int) int { return 3 * z }

// Column implements Scheme.
func (ThreePolarity) Column(r *model.Review, z int) linalg.Vector {
	col := linalg.NewVector(3 * z)
	for _, m := range r.Mentions {
		switch m.Polarity {
		case model.Positive:
			col[3*m.Aspect] = 1
		case model.Negative:
			col[3*m.Aspect+1] = 1
		case model.Neutral:
			col[3*m.Aspect+2] = 1
		}
	}
	return col
}

// Vector implements Scheme.
func (s ThreePolarity) Vector(reviews []*model.Review, z int) linalg.Vector {
	return countingVector(s, reviews, z)
}

// UnaryScale associates each aspect with a single [0,1] score obtained by
// passing the summed sentiment through a sigmoid (§4.2.3). Aspects never
// mentioned stay at 0 (rather than sigmoid(0)=0.5) so that untouched aspects
// do not register an opinion.
type UnaryScale struct{}

// Name implements Scheme.
func (UnaryScale) Name() string { return "unary-scale" }

// Dim implements Scheme.
func (UnaryScale) Dim(z int) int { return z }

// Column implements Scheme: the review's signed sentiment mass per aspect.
func (UnaryScale) Column(r *model.Review, z int) linalg.Vector {
	col := linalg.NewVector(z)
	for _, m := range r.Mentions {
		col[m.Aspect] += m.Score
	}
	return col
}

// Vector implements Scheme: sigmoid of the total sentiment per mentioned
// aspect.
func (u UnaryScale) Vector(reviews []*model.Review, z int) linalg.Vector {
	out := linalg.NewVector(z)
	var sc VecScratch
	VectorInto(u, out, &sc, reviews, z)
	return out
}

// Sigmoid returns 1/(1+e^{-s}).
func Sigmoid(s float64) float64 { return 1 / (1 + math.Exp(-s)) }

// VecScratch holds the reusable buffers behind the allocation-free vector
// builders VectorInto and AspectVectorInto. The zero value is ready to use;
// buffers grow on demand and are fully cleared before every pass, so one
// scratch can serve any interleaving of builder calls. Not safe for
// concurrent use.
type VecScratch struct {
	stamp  []int
	counts linalg.Vector
}

// stampBuf returns a zeroed review-index stamp of length n.
func (sc *VecScratch) stampBuf(n int) []int {
	if cap(sc.stamp) < n {
		sc.stamp = make([]int, n)
	}
	s := sc.stamp[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// countsBuf returns a zeroed accumulator of length n.
func (sc *VecScratch) countsBuf(n int) linalg.Vector {
	if cap(sc.counts) < n {
		sc.counts = linalg.NewVector(n)
	}
	c := sc.counts[:n]
	for i := range c {
		c[i] = 0
	}
	return c
}

// countingVector sums per-review presence columns and normalizes by the
// maximum aspect occurrence count in the set.
func countingVector(s Scheme, reviews []*model.Review, z int) linalg.Vector {
	sum := linalg.NewVector(s.Dim(z))
	var sc VecScratch
	VectorInto(s, sum, &sc, reviews, z)
	return sum
}

// VectorInto computes π(S) into dst — which must have length s.Dim(z) — with
// no allocations beyond growing sc. Results are element-identical to
// s.Vector: the accumulation and normalization orders match exactly.
// Schemes outside the built-in three fall back to one s.Vector call copied
// into dst.
func VectorInto(s Scheme, dst linalg.Vector, sc *VecScratch, reviews []*model.Review, z int) {
	for i := range dst {
		dst[i] = 0
	}
	// Accumulate presence counts directly from the mentions for the two
	// counting schemes; a review's repeated mentions of the same cell are
	// deduplicated with a review-index stamp, matching Column's 0/1
	// semantics without materializing a column per review.
	switch s.(type) {
	case Binary:
		stamp := sc.stampBuf(2 * z)
		for ri, r := range reviews {
			for _, m := range r.Mentions {
				var idx int
				switch m.Polarity {
				case model.Positive:
					idx = 2 * m.Aspect
				case model.Negative:
					idx = 2*m.Aspect + 1
				default:
					continue
				}
				if stamp[idx] != ri+1 {
					stamp[idx] = ri + 1
					dst[idx]++
				}
			}
		}
	case ThreePolarity:
		stamp := sc.stampBuf(3 * z)
		for ri, r := range reviews {
			for _, m := range r.Mentions {
				var idx int
				switch m.Polarity {
				case model.Positive:
					idx = 3 * m.Aspect
				case model.Negative:
					idx = 3*m.Aspect + 1
				case model.Neutral:
					idx = 3*m.Aspect + 2
				default:
					continue
				}
				if stamp[idx] != ri+1 {
					stamp[idx] = ri + 1
					dst[idx]++
				}
			}
		}
	case UnaryScale:
		total := sc.countsBuf(z)
		touched := sc.stampBuf(z)
		for _, r := range reviews {
			for _, m := range r.Mentions {
				total[m.Aspect] += m.Score
				touched[m.Aspect] = 1
			}
		}
		for a := 0; a < z; a++ {
			if touched[a] != 0 {
				dst[a] = Sigmoid(total[a])
			}
		}
		return
	default:
		copy(dst, s.Vector(reviews, z))
		return
	}
	denom := maxAspectCountInto(sc, reviews, z)
	if denom == 0 {
		return // all zeros already
	}
	dst.ScaleInPlace(1 / denom)
}

// AspectColumn returns the 0/1 aspect-presence vector of one review.
func AspectColumn(r *model.Review, z int) linalg.Vector {
	col := linalg.NewVector(z)
	for _, m := range r.Mentions {
		col[m.Aspect] = 1
	}
	return col
}

// AspectVector returns φ(S): per-aspect review counts normalized by the
// maximum aspect count within S. Opinion polarities are ignored.
func AspectVector(reviews []*model.Review, z int) linalg.Vector {
	out := linalg.NewVector(z)
	var sc VecScratch
	AspectVectorInto(out, &sc, reviews, z)
	return out
}

// AspectVectorInto computes φ(S) into dst — which must have length z — with
// no allocations beyond growing sc. Element-identical to AspectVector.
func AspectVectorInto(dst linalg.Vector, sc *VecScratch, reviews []*model.Review, z int) {
	for i := range dst {
		dst[i] = 0
	}
	stamp := sc.stampBuf(z)
	for ri, r := range reviews {
		for _, m := range r.Mentions {
			if stamp[m.Aspect] != ri+1 {
				stamp[m.Aspect] = ri + 1
				dst[m.Aspect]++
			}
		}
	}
	if m := dst.Max(); m > 0 {
		dst.ScaleInPlace(1 / m)
	}
}

// maxAspectCountInto returns the largest per-aspect review count in S — the
// shared normalization denominator of π and φ in Working Example 1. A
// review-index stamp deduplicates repeated mentions within one review
// without allocating a per-review aspect set; counts and stamp both come
// from sc.
func maxAspectCountInto(sc *VecScratch, reviews []*model.Review, z int) float64 {
	counts := sc.countsBuf(z)
	stamp := sc.stampBuf(z)
	for ri, r := range reviews {
		for _, m := range r.Mentions {
			if stamp[m.Aspect] != ri+1 {
				stamp[m.Aspect] = ri + 1
				counts[m.Aspect]++
			}
		}
	}
	m := counts.Max()
	if m < 0 {
		return 0
	}
	return m
}

// SchemeByName returns the scheme with the given name.
func SchemeByName(name string) (Scheme, error) {
	switch name {
	case "binary":
		return Binary{}, nil
	case "3-polarity":
		return ThreePolarity{}, nil
	case "unary-scale":
		return UnaryScale{}, nil
	default:
		return nil, fmt.Errorf("opinion: unknown scheme %q", name)
	}
}

// Schemes returns all implemented schemes in the order of Table 4.
func Schemes() []Scheme { return []Scheme{Binary{}, ThreePolarity{}, UnaryScale{}} }
