package opinion

import (
	"math"
	"testing"
	"testing/quick"

	"comparesets/internal/linalg"
	"comparesets/internal/model"
)

// workingExampleR1 reconstructs R₁ of Working Example 1 (Figure 2a): aspects
// {battery, lens, quality, price, shuttle} with frequencies {6, 4, 4, 0, 0},
// opinion counts battery(2+,4-), lens(2+,2-), quality(2+,2-), and the optimal
// m=3 subset S₁ = {r5, r6, r7}.
func workingExampleR1() []*model.Review {
	const (
		battery = 0
		lens    = 1
		quality = 2
	)
	mk := func(id string, ms ...model.Mention) *model.Review {
		return &model.Review{ID: id, ItemID: "p1", Mentions: ms}
	}
	pos := func(a int) model.Mention { return model.Mention{Aspect: a, Polarity: model.Positive, Score: 1} }
	neg := func(a int) model.Mention { return model.Mention{Aspect: a, Polarity: model.Negative, Score: -1} }
	return []*model.Review{
		mk("r1", pos(battery), pos(lens)),
		mk("r2", neg(battery), neg(lens)),
		mk("r3", neg(battery), pos(quality)),
		mk("r4", neg(quality)),
		mk("r5", pos(battery), pos(lens)),
		mk("r6", neg(battery), neg(lens), pos(quality)),
		mk("r7", neg(battery), neg(quality)),
	}
}

const exampleZ = 5

func TestBinaryVectorMatchesWorkingExample(t *testing.T) {
	r1 := workingExampleR1()
	tau := Binary{}.Vector(r1, exampleZ)
	want := linalg.Vector{2.0 / 6, 4.0 / 6, 2.0 / 6, 2.0 / 6, 2.0 / 6, 2.0 / 6, 0, 0, 0, 0}
	if !tau.ApproxEqual(want, 1e-12) {
		t.Errorf("τ₁ = %v, want %v", tau, want)
	}
}

func TestAspectVectorMatchesWorkingExample(t *testing.T) {
	r1 := workingExampleR1()
	gamma := AspectVector(r1, exampleZ)
	want := linalg.Vector{1, 4.0 / 6, 4.0 / 6, 0, 0}
	if !gamma.ApproxEqual(want, 1e-12) {
		t.Errorf("Γ = %v, want %v", gamma, want)
	}
}

func TestSelectedSubsetReproducesTargets(t *testing.T) {
	// S₁ = {r5, r6, r7} has π(S₁) ≡ τ₁ and φ(S₁) ≡ Γ (Working Example 1).
	r1 := workingExampleR1()
	s1 := r1[4:7]
	pi := Binary{}.Vector(s1, exampleZ)
	wantPi := linalg.Vector{1.0 / 3, 2.0 / 3, 1.0 / 3, 1.0 / 3, 1.0 / 3, 1.0 / 3, 0, 0, 0, 0}
	if !pi.ApproxEqual(wantPi, 1e-12) {
		t.Errorf("π(S₁) = %v, want %v", pi, wantPi)
	}
	phi := AspectVector(s1, exampleZ)
	wantPhi := linalg.Vector{1, 2.0 / 3, 2.0 / 3, 0, 0}
	if !phi.ApproxEqual(wantPhi, 1e-12) {
		t.Errorf("φ(S₁) = %v, want %v", phi, wantPhi)
	}
	// The alternative optimal set {r1..r4} for m ≥ 4 matches too.
	alt := r1[0:4]
	if altPi := (Binary{}).Vector(alt, exampleZ); !altPi.ApproxEqual(wantPi, 1e-12) {
		t.Errorf("π({r1..r4}) = %v", altPi)
	}
	if !AspectVector(alt, exampleZ).ApproxEqual(wantPhi, 1e-12) {
		t.Errorf("φ({r1..r4}) = %v", AspectVector(alt, exampleZ))
	}
}

func TestEmptySetVectorsAreZero(t *testing.T) {
	if v := (Binary{}).Vector(nil, 3); v.Norm1() != 0 || len(v) != 6 {
		t.Errorf("empty π = %v", v)
	}
	if v := AspectVector(nil, 3); v.Norm1() != 0 || len(v) != 3 {
		t.Errorf("empty φ = %v", v)
	}
	if v := (UnaryScale{}).Vector(nil, 3); v.Norm1() != 0 {
		t.Errorf("empty unary π = %v", v)
	}
}

func TestBinaryColumn(t *testing.T) {
	r := &model.Review{Mentions: []model.Mention{
		{Aspect: 0, Polarity: model.Positive},
		{Aspect: 1, Polarity: model.Negative},
		{Aspect: 2, Polarity: model.Neutral}, // ignored by binary
	}}
	col := Binary{}.Column(r, 3)
	want := linalg.Vector{1, 0, 0, 1, 0, 0}
	if !col.ApproxEqual(want, 0) {
		t.Errorf("Column = %v, want %v", col, want)
	}
}

func TestThreePolarityColumnAndVector(t *testing.T) {
	r := &model.Review{Mentions: []model.Mention{
		{Aspect: 0, Polarity: model.Neutral},
		{Aspect: 1, Polarity: model.Positive},
	}}
	col := ThreePolarity{}.Column(r, 2)
	want := linalg.Vector{0, 0, 1, 1, 0, 0}
	if !col.ApproxEqual(want, 0) {
		t.Errorf("Column = %v", col)
	}
	v := ThreePolarity{}.Vector([]*model.Review{r}, 2)
	// max aspect count is 1, so the vector equals the column.
	if !v.ApproxEqual(want, 1e-12) {
		t.Errorf("Vector = %v", v)
	}
}

func TestUnaryScaleVector(t *testing.T) {
	r1 := &model.Review{Mentions: []model.Mention{{Aspect: 0, Polarity: model.Positive, Score: 2}}}
	r2 := &model.Review{Mentions: []model.Mention{{Aspect: 0, Polarity: model.Negative, Score: -2}}}
	v := UnaryScale{}.Vector([]*model.Review{r1, r2}, 2)
	// Aspect 0: sigmoid(0) = 0.5 because it was mentioned with net score 0;
	// aspect 1: untouched, stays 0.
	if math.Abs(v[0]-0.5) > 1e-12 {
		t.Errorf("v[0] = %v, want 0.5", v[0])
	}
	if v[1] != 0 {
		t.Errorf("v[1] = %v, want 0", v[1])
	}
	col := UnaryScale{}.Column(r1, 2)
	if !col.ApproxEqual(linalg.Vector{2, 0}, 0) {
		t.Errorf("Column = %v", col)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(100); math.Abs(got-1) > 1e-12 {
		t.Errorf("Sigmoid(100) = %v", got)
	}
	if got := Sigmoid(-100); got > 1e-12 {
		t.Errorf("Sigmoid(-100) = %v", got)
	}
}

func TestSchemeDims(t *testing.T) {
	cases := []struct {
		s    Scheme
		want int
	}{{Binary{}, 10}, {ThreePolarity{}, 15}, {UnaryScale{}, 5}}
	for _, c := range cases {
		if got := c.s.Dim(5); got != c.want {
			t.Errorf("%s.Dim(5) = %d, want %d", c.s.Name(), got, c.want)
		}
	}
}

func TestSchemeByName(t *testing.T) {
	for _, s := range Schemes() {
		got, err := SchemeByName(s.Name())
		if err != nil || got.Name() != s.Name() {
			t.Errorf("SchemeByName(%q) = %v, %v", s.Name(), got, err)
		}
	}
	if _, err := SchemeByName("bogus"); err == nil {
		t.Error("expected error for unknown scheme")
	}
}

func TestAspectColumnDeduplicatesWithinReview(t *testing.T) {
	r := &model.Review{Mentions: []model.Mention{
		{Aspect: 1, Polarity: model.Positive},
		{Aspect: 1, Polarity: model.Negative},
	}}
	col := AspectColumn(r, 3)
	if !col.ApproxEqual(linalg.Vector{0, 1, 0}, 0) {
		t.Errorf("AspectColumn = %v", col)
	}
}

// Property: counting-scheme vectors always lie in [0, 1]^d — counts never
// exceed the normalization denominator.
func TestCountingVectorsBounded(t *testing.T) {
	f := func(raw [12]uint8) bool {
		const z = 3
		var reviews []*model.Review
		for i := 0; i < len(raw); i += 2 {
			r := &model.Review{}
			a := int(raw[i]) % z
			p := model.Polarity(int(raw[i+1]) % 3)
			r.Mentions = append(r.Mentions, model.Mention{Aspect: a, Polarity: p})
			reviews = append(reviews, r)
		}
		for _, s := range []Scheme{Binary{}, ThreePolarity{}} {
			v := s.Vector(reviews, z)
			for _, x := range v {
				if x < 0 || x > 1+1e-12 {
					return false
				}
			}
		}
		phi := AspectVector(reviews, z)
		for _, x := range phi {
			if x < 0 || x > 1+1e-12 {
				return false
			}
		}
		return phi.Max() == 1 // the most frequent aspect normalizes to 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: φ is invariant to mention polarity (it only sees aspects).
func TestAspectVectorPolarityInvariant(t *testing.T) {
	f := func(raw [8]uint8) bool {
		const z = 4
		var a, b []*model.Review
		for _, x := range raw {
			asp := int(x) % z
			a = append(a, &model.Review{Mentions: []model.Mention{{Aspect: asp, Polarity: model.Positive}}})
			b = append(b, &model.Review{Mentions: []model.Mention{{Aspect: asp, Polarity: model.Negative}}})
		}
		return AspectVector(a, z).ApproxEqual(AspectVector(b, z), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
