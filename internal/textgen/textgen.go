// Package textgen renders review text from aspect-opinion annotations using
// the category lexicons. It is the generative half of the synthetic-data
// substrate: review text carries exactly the aspects and sentiments of its
// annotations, phrased through per-aspect templates, so that (a) ROUGE
// comparisons between selected reviews are meaningful and (b) the
// frequency-based extractor (internal/aspectex) can recover the annotations
// from the text alone.
package textgen

import (
	"fmt"
	"math/rand"
	"strings"

	"comparesets/internal/lexicon"
	"comparesets/internal/model"
)

// openers are sentiment-free filler sentences occasionally prepended to a
// review. They must not contain aspect surfaces or sentiment-lexicon words.
var openers = []string{
	"bought this last month",
	"this is my second one",
	"ordered for a family member",
	"arrived on a tuesday",
	"using it daily since then",
}

// Review renders the text for a review with the given mentions. The output
// is deterministic for a fixed rng state: one sentence per mention plus an
// optional opener, joined by periods.
func Review(cat lexicon.Category, mentions []model.Mention, rng *rand.Rand) string {
	var sentences []string
	if rng.Float64() < 0.5 {
		sentences = append(sentences, openers[rng.Intn(len(openers))])
	}
	for _, m := range mentions {
		sentences = append(sentences, Sentence(cat, m, rng))
	}
	if len(sentences) == 0 {
		sentences = append(sentences, openers[rng.Intn(len(openers))])
	}
	return strings.Join(sentences, ". ") + "."
}

// Sentence renders a single aspect-opinion mention. Mentions outside the
// category's aspect range render as an empty-opinion filler (callers are
// expected to validate instances; this keeps the generator total).
func Sentence(cat lexicon.Category, m model.Mention, rng *rand.Rand) string {
	if m.Aspect < 0 || m.Aspect >= len(cat.Aspects) {
		return openers[rng.Intn(len(openers))]
	}
	a := cat.Aspects[m.Aspect]
	var pool []string
	switch m.Polarity {
	case model.Positive:
		pool = a.Positive
	case model.Negative:
		pool = a.Negative
	default:
		pool = a.Neutral
	}
	tmpl := pool[rng.Intn(len(pool))]
	surface := a.Surfaces[0]
	// Occasionally use an alternate surface form for lexical variety.
	if len(a.Surfaces) > 1 && rng.Float64() < 0.25 {
		surface = a.Surfaces[1+rng.Intn(len(a.Surfaces)-1)]
	}
	return fmt.Sprintf(tmpl, surface)
}

// Title renders a product title from the category's brand/noun material.
func Title(cat lexicon.Category, rng *rand.Rand) string {
	brand := cat.Brands[rng.Intn(len(cat.Brands))]
	noun := cat.Nouns[rng.Intn(len(cat.Nouns))]
	return fmt.Sprintf("%s %s Model %c%d", brand, noun, 'A'+rune(rng.Intn(6)), 1+rng.Intn(9))
}
