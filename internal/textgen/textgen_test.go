package textgen

import (
	"math/rand"
	"strings"
	"testing"

	"comparesets/internal/lexicon"
	"comparesets/internal/model"
	"comparesets/internal/rouge"
)

func TestSentenceContainsSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cat := lexicon.Cellphone
	for a := range cat.Aspects {
		for _, pol := range []model.Polarity{model.Positive, model.Negative, model.Neutral} {
			s := Sentence(cat, model.Mention{Aspect: a, Polarity: pol}, rng)
			found := false
			for _, surf := range cat.Aspects[a].Surfaces {
				if strings.Contains(s, surf) {
					found = true
				}
			}
			if !found {
				t.Errorf("aspect %s %v: sentence %q lacks surface", cat.Aspects[a].Name, pol, s)
			}
		}
	}
}

func TestSentenceSentimentSign(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cat := lexicon.Toy
	for a := range cat.Aspects {
		for trial := 0; trial < 10; trial++ {
			pos := Sentence(cat, model.Mention{Aspect: a, Polarity: model.Positive}, rng)
			if v := textValence(pos); v <= 0 {
				t.Errorf("positive sentence %q valence %v", pos, v)
			}
			neg := Sentence(cat, model.Mention{Aspect: a, Polarity: model.Negative}, rng)
			if v := textValence(neg); v >= 0 {
				t.Errorf("negative sentence %q valence %v", neg, v)
			}
		}
	}
}

func textValence(s string) float64 {
	var total float64
	for _, tok := range rouge.Tokenize(s) {
		total += lexicon.Valence(tok)
	}
	return total
}

func TestSentenceOutOfRangeAspect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Sentence(lexicon.Clothing, model.Mention{Aspect: 99}, rng)
	if s == "" {
		t.Error("empty sentence for out-of-range aspect")
	}
}

func TestReviewDeterministic(t *testing.T) {
	mentions := []model.Mention{
		{Aspect: 0, Polarity: model.Positive},
		{Aspect: 1, Polarity: model.Negative},
	}
	a := Review(lexicon.Cellphone, mentions, rand.New(rand.NewSource(7)))
	b := Review(lexicon.Cellphone, mentions, rand.New(rand.NewSource(7)))
	if a != b {
		t.Errorf("not deterministic:\n%q\n%q", a, b)
	}
	if !strings.HasSuffix(a, ".") {
		t.Errorf("review %q lacks final period", a)
	}
}

func TestReviewEmptyMentions(t *testing.T) {
	s := Review(lexicon.Toy, nil, rand.New(rand.NewSource(4)))
	if len(rouge.Tokenize(s)) == 0 {
		t.Errorf("empty review text %q", s)
	}
}

func TestOpenersAreNeutralAndSurfaceFree(t *testing.T) {
	surfaces := map[string]bool{}
	for _, cat := range lexicon.Categories() {
		for _, a := range cat.Aspects {
			for _, s := range a.Surfaces {
				surfaces[s] = true
			}
		}
	}
	for _, o := range openers {
		for _, tok := range rouge.Tokenize(o) {
			if lexicon.Valence(tok) != 0 {
				t.Errorf("opener %q contains sentiment word %q", o, tok)
			}
			if surfaces[tok] {
				t.Errorf("opener %q contains aspect surface %q", o, tok)
			}
		}
	}
}

func TestTitle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	title := Title(lexicon.Clothing, rng)
	if title == "" || !strings.Contains(title, "Model") {
		t.Errorf("title = %q", title)
	}
}
