package metrics_test

import (
	"fmt"

	"comparesets/internal/metrics"
	"comparesets/internal/model"
)

// ExampleEvaluateSet scores a selected set on the §5.1 quality axes.
func ExampleEvaluateSet() {
	item := &model.Item{ID: "p", Reviews: []*model.Review{
		{ID: "r0", Text: "battery is great", Mentions: []model.Mention{{Aspect: 0, Polarity: model.Positive}}},
		{ID: "r1", Text: "battery died fast", Mentions: []model.Mention{{Aspect: 0, Polarity: model.Negative}}},
		{ID: "r2", Text: "screen looks sharp", Mentions: []model.Mention{{Aspect: 1, Polarity: model.Positive}}},
	}}
	m := metrics.EvaluateSet(item, []int{0, 2}, 2)
	fmt.Printf("aspect coverage %.2f opinion coverage %.2f\n", m.AspectCoverage, m.OpinionCoverage)
	// Output:
	// aspect coverage 1.00 opinion coverage 0.67
}
