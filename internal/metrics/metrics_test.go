package metrics

import (
	"math"
	"testing"

	"comparesets/internal/core"
	"comparesets/internal/datagen"
	"comparesets/internal/dataset"
	"comparesets/internal/lexicon"
	"comparesets/internal/model"
)

func testItem() *model.Item {
	pos := func(a int) model.Mention { return model.Mention{Aspect: a, Polarity: model.Positive, Score: 1} }
	neg := func(a int) model.Mention { return model.Mention{Aspect: a, Polarity: model.Negative, Score: -1} }
	return &model.Item{ID: "p", Reviews: []*model.Review{
		{ID: "r0", Text: "battery is great", Mentions: []model.Mention{pos(0)}},
		{ID: "r1", Text: "battery is terrible", Mentions: []model.Mention{neg(0)}},
		{ID: "r2", Text: "screen looks sharp", Mentions: []model.Mention{pos(1)}},
		{ID: "r3", Text: "battery is great", Mentions: []model.Mention{pos(0)}},
	}}
}

func TestEvaluateSetCoverage(t *testing.T) {
	it := testItem()
	const z = 2
	m := EvaluateSet(it, []int{0, 2}, z)
	if !near(m.AspectCoverage, 1) {
		t.Errorf("aspect coverage = %v, want 1 (both aspects hit)", m.AspectCoverage)
	}
	// Opinion pairs present in the item: battery+, battery−, screen+ (3).
	// Selected covers battery+ and screen+ → 2/3.
	if !near(m.OpinionCoverage, 2.0/3) {
		t.Errorf("opinion coverage = %v, want 2/3", m.OpinionCoverage)
	}
}

func TestEvaluateSetRedundancy(t *testing.T) {
	it := testItem()
	const z = 2
	identical := EvaluateSet(it, []int{0, 3}, z) // same text twice
	if !near(identical.Redundancy, 1) {
		t.Errorf("identical texts redundancy = %v, want 1", identical.Redundancy)
	}
	if !near(identical.Diversity(), 0) {
		t.Errorf("identical texts diversity = %v, want 0", identical.Diversity())
	}
	distinct := EvaluateSet(it, []int{0, 2}, z)
	if distinct.Redundancy >= identical.Redundancy {
		t.Errorf("distinct redundancy %v not below identical %v", distinct.Redundancy, identical.Redundancy)
	}
	single := EvaluateSet(it, []int{0}, z)
	if single.Redundancy != 0 {
		t.Errorf("singleton redundancy = %v", single.Redundancy)
	}
}

func TestEvaluateSetRepresentativeness(t *testing.T) {
	it := testItem()
	const z = 2
	// Selecting only praise skews the distribution vs the mixed truth.
	skewed := EvaluateSet(it, []int{0, 3}, z)
	balanced := EvaluateSet(it, []int{0, 1, 2}, z)
	if balanced.Representativeness <= skewed.Representativeness {
		t.Errorf("balanced %v not above skewed %v", balanced.Representativeness, skewed.Representativeness)
	}
}

func TestEvaluateSetEmptyItem(t *testing.T) {
	m := EvaluateSet(&model.Item{ID: "p"}, nil, 2)
	if m.AspectCoverage != 1 || m.OpinionCoverage != 1 {
		t.Errorf("empty item coverage = %+v", m)
	}
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// Algorithm-family trade-offs must be visible in the metrics: the
// comprehensive baseline wins coverage, the characteristic-style selectors
// win representativeness.
func TestMetricsSeparateAlgorithmFamilies(t *testing.T) {
	c, err := datagen.Generate(datagen.Config{
		Category: lexicon.Cellphone, Products: 30, Reviewers: 60,
		MeanReviews: 15, MeanAlsoBought: 5, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	insts, err := dataset.Instances(c, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{M: 3, Lambda: 1, Mu: 0.1}
	score := func(sel core.Selector) InstanceMetrics {
		var agg InstanceMetrics
		for i, inst := range insts {
			instCfg := cfg
			instCfg.Seed = int64(i)
			s, err := sel.Select(inst, instCfg)
			if err != nil {
				t.Fatal(err)
			}
			m := EvaluateSelection(inst, s)
			agg.AspectCoverage += m.AspectCoverage
			agg.Representativeness += m.Representativeness
		}
		return agg
	}
	comp := score(core.Comprehensive{})
	plus := score(core.CompaReSetSPlus{})
	random := score(core.Random{})
	if comp.AspectCoverage <= random.AspectCoverage {
		t.Errorf("comprehensive coverage %v not above random %v", comp.AspectCoverage, random.AspectCoverage)
	}
	if plus.Representativeness <= random.Representativeness {
		t.Errorf("CompaReSetS+ representativeness %v not above random %v", plus.Representativeness, random.Representativeness)
	}
	if comp.AspectCoverage < plus.AspectCoverage {
		t.Errorf("comprehensive coverage %v below CompaReSetS+ %v (set-cover should win its own metric)",
			comp.AspectCoverage, plus.AspectCoverage)
	}
}
