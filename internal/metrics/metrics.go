// Package metrics quantifies review-selection quality along the axes the
// related-work families optimize (§5.1): aspect coverage (comprehensive
// selection), opinion-pair coverage (Tsaparas-style), redundancy/diversity
// (diverse selection), and representativeness (characteristic selection /
// this paper). One selection can then be scored on every axis at once,
// making the trade-offs between algorithm families measurable.
package metrics

import (
	"comparesets/internal/core"
	"comparesets/internal/linalg"
	"comparesets/internal/model"
	"comparesets/internal/opinion"
	"comparesets/internal/rouge"
)

// SetMetrics scores one item's selected review set.
type SetMetrics struct {
	// AspectCoverage is the fraction of the item's discussed aspects that
	// appear in the selected set.
	AspectCoverage float64
	// OpinionCoverage is the fraction of the item's (aspect, polarity)
	// pairs that appear in the selected set.
	OpinionCoverage float64
	// Redundancy is the mean pairwise ROUGE-1 F1 among selected reviews
	// (0 for sets smaller than 2); Diversity = 1 − Redundancy.
	Redundancy float64
	// Representativeness is cos(τᵢ, π(Sᵢ)) under the binary scheme.
	Representativeness float64
}

// Diversity returns 1 − Redundancy.
func (m SetMetrics) Diversity() float64 { return 1 - m.Redundancy }

// EvaluateSet scores one selected set against its item.
func EvaluateSet(item *model.Item, selected []int, z int) SetMetrics {
	var out SetMetrics
	out.AspectCoverage = coverage(item, selected, aspectElements)
	out.OpinionCoverage = coverage(item, selected, func(r *model.Review, z int) []int {
		return opinionElements(r, z)
	}, z)

	// Redundancy over pre-tokenized selected texts.
	toks := make([][]string, len(selected))
	for i, j := range selected {
		toks[i] = rouge.Tokenize(item.Reviews[j].Text)
	}
	var sum float64
	var pairs int
	for i := 0; i < len(toks); i++ {
		for j := i + 1; j < len(toks); j++ {
			sum += rouge.CompareTokens(toks[i], toks[j]).R1.F1
			pairs++
		}
	}
	if pairs > 0 {
		out.Redundancy = sum / float64(pairs)
	}

	// Representativeness.
	sch := opinion.Binary{}
	tau := sch.Vector(item.Reviews, z)
	set := make([]*model.Review, 0, len(selected))
	for _, j := range selected {
		set = append(set, item.Reviews[j])
	}
	out.Representativeness = linalg.Cosine(tau, sch.Vector(set, z))
	return out
}

// aspectElements adapts Review.AspectSet to the element-function shape.
func aspectElements(r *model.Review, _ int) []int { return r.AspectSet() }

// opinionElements encodes (aspect, polarity) pairs as integers.
func opinionElements(r *model.Review, z int) []int {
	seen := map[int]bool{}
	var out []int
	for _, m := range r.Mentions {
		el := int(m.Polarity)*z + m.Aspect
		if !seen[el] {
			seen[el] = true
			out = append(out, el)
		}
	}
	return out
}

// coverage computes |elements(selected)| / |elements(all reviews)| for an
// element extractor; an item with no elements scores 1.
func coverage(item *model.Item, selected []int, elements func(*model.Review, int) []int, zOpt ...int) float64 {
	z := 0
	if len(zOpt) > 0 {
		z = zOpt[0]
	}
	all := map[int]bool{}
	for _, r := range item.Reviews {
		for _, el := range elements(r, z) {
			all[el] = true
		}
	}
	if len(all) == 0 {
		return 1
	}
	got := map[int]bool{}
	for _, j := range selected {
		for _, el := range elements(item.Reviews[j], z) {
			got[el] = true
		}
	}
	covered := 0
	for el := range all {
		if got[el] {
			covered++
		}
	}
	return float64(covered) / float64(len(all))
}

// InstanceMetrics aggregates SetMetrics over an instance selection
// (mean across items).
type InstanceMetrics struct {
	AspectCoverage     float64
	OpinionCoverage    float64
	Redundancy         float64
	Representativeness float64
}

// EvaluateSelection averages per-item metrics over the whole instance.
func EvaluateSelection(inst *model.Instance, sel *core.Selection) InstanceMetrics {
	z := inst.Aspects.Len()
	var agg InstanceMetrics
	n := 0
	for i, it := range inst.Items {
		m := EvaluateSet(it, sel.Indices[i], z)
		agg.AspectCoverage += m.AspectCoverage
		agg.OpinionCoverage += m.OpinionCoverage
		agg.Redundancy += m.Redundancy
		agg.Representativeness += m.Representativeness
		n++
	}
	if n > 0 {
		agg.AspectCoverage /= float64(n)
		agg.OpinionCoverage /= float64(n)
		agg.Redundancy /= float64(n)
		agg.Representativeness /= float64(n)
	}
	return agg
}
