// Package lexicon holds the category vocabularies behind the synthetic data
// substrate: per-category aspect lexicons (aspect name, surface forms, and
// polarity-specific description phrases) and a shared sentiment lexicon.
//
// It replaces the paper's Microsoft-Concepts/Sentires aspect inventory
// (§4.1.1): the generator (internal/textgen) writes reviews *from* these
// vocabularies and the extractor (internal/aspectex) reads aspects and
// opinions back *with* them, so the full annotate-then-select pipeline is
// exercised end to end.
package lexicon

// Aspect is one product aspect with its surface vocabulary.
type Aspect struct {
	// Name is the canonical aspect name (vocabulary entry).
	Name string
	// Surfaces are the word forms that signal the aspect in text; the
	// first surface is used by the generator.
	Surfaces []string
	// Positive and Negative are opinionated sentence templates; "%s" is
	// replaced by a surface form.
	Positive []string
	Negative []string
	// Neutral are factual sentences about the aspect.
	Neutral []string
}

// Category bundles a product category's aspects and naming material.
type Category struct {
	// Name is the dataset name as printed in the paper's tables.
	Name string
	// Aspects is the category's aspect lexicon.
	Aspects []Aspect
	// Brands and Nouns combine into product titles.
	Brands []string
	Nouns  []string
}

// AspectNames returns the aspect names in order.
func (c Category) AspectNames() []string {
	out := make([]string, len(c.Aspects))
	for i, a := range c.Aspects {
		out[i] = a.Name
	}
	return out
}

// SentimentWord is a lexicon entry with a signed valence.
type SentimentWord struct {
	Word    string
	Valence float64
}

// Sentiments is the shared opinion-word lexicon used by the extractor.
// Positive words have valence +1, strong ones +2; negatives mirror.
var Sentiments = []SentimentWord{
	{"great", 1}, {"good", 1}, {"nice", 1}, {"excellent", 2}, {"amazing", 2},
	{"love", 2}, {"perfect", 2}, {"solid", 1}, {"impressive", 1}, {"fantastic", 2},
	{"comfortable", 1}, {"reliable", 1}, {"sturdy", 1}, {"crisp", 1}, {"fast", 1},
	{"bad", -1}, {"poor", -1}, {"terrible", -2}, {"awful", -2}, {"disappointing", -1},
	{"weak", -1}, {"broken", -2}, {"flimsy", -1}, {"slow", -1}, {"cheap", -1},
	{"uncomfortable", -1}, {"unreliable", -1}, {"blurry", -1}, {"noisy", -1}, {"faulty", -2},
}

// Valence returns the valence of word, or 0 when it is not in the lexicon.
func Valence(word string) float64 {
	for _, s := range Sentiments {
		if s.Word == word {
			return s.Valence
		}
	}
	return 0
}

// Cellphone is the "Cell Phones and Accessories" category.
var Cellphone = Category{
	Name:   "Cellphone",
	Brands: []string{"Voltix", "Cellumax", "Nordic", "Apex", "Lumen", "Orbit"},
	Nouns: []string{
		"Car Charger", "Battery Case", "Wireless Earbuds", "Screen Protector",
		"Phone Stand", "Power Bank", "USB Cable", "Bluetooth Speaker",
	},
	Aspects: []Aspect{
		{
			Name:     "battery",
			Surfaces: []string{"battery", "charge"},
			Positive: []string{"the %s lasts all day, great endurance", "%s life is excellent and reliable"},
			Negative: []string{"the %s drains too quickly, bad", "%s life is disappointing"},
			Neutral:  []string{"the %s is rated at 3000 mah"},
		},
		{
			Name:     "charger",
			Surfaces: []string{"charger", "charging"},
			Positive: []string{"the %s works great in the car", "%s is fast and never overheats"},
			Negative: []string{"the %s stopped working after a month, disappointing", "%s is slow and unreliable"},
			Neutral:  []string{"the %s plugs into the lighter socket"},
		},
		{
			Name:     "cable",
			Surfaces: []string{"cable", "cord"},
			Positive: []string{"the %s feels sturdy and well made", "%s is nice and long enough for the back seat"},
			Negative: []string{"the %s frayed within weeks, very cheap", "%s is flimsy and broken already"},
			Neutral:  []string{"the %s measures three feet"},
		},
		{
			Name:     "screen",
			Surfaces: []string{"screen", "display"},
			Positive: []string{"the %s is crisp and bright", "%s quality is excellent outdoors"},
			Negative: []string{"the %s scratches easily, looks bad", "%s is blurry at an angle"},
			Neutral:  []string{"the %s is five inches across"},
		},
		{
			Name:     "sound",
			Surfaces: []string{"sound", "audio", "speaker"},
			Positive: []string{"the %s is rich and impressive", "%s quality is amazing for something this small"},
			Negative: []string{"the %s is tinny and noisy", "%s crackles at high volume, terrible"},
			Neutral:  []string{"the %s supports two channels"},
		},
		{
			Name:     "price",
			Surfaces: []string{"price", "value"},
			Positive: []string{"the %s is great for what you get", "excellent %s compared to the big brands"},
			Negative: []string{"the %s is too high, poor deal", "poor %s, overpriced plastic"},
			Neutral:  []string{"the %s matches similar products"},
		},
		{
			Name:     "durability",
			Surfaces: []string{"durability", "build"},
			Positive: []string{"%s is solid, survived several drops", "the %s quality feels premium and sturdy"},
			Negative: []string{"%s is poor, cracked in a week", "the %s feels cheap and flimsy"},
			Neutral:  []string{"the %s uses an aluminum shell"},
		},
		{
			Name:     "fit",
			Surfaces: []string{"fit", "size"},
			Positive: []string{"the %s is perfect for my phone model", "%s is snug and secure, great"},
			Negative: []string{"the %s is wrong for newer phones, bad", "%s is loose and keeps slipping, bad"},
			Neutral:  []string{"the %s suits most phone models"},
		},
		{
			Name:     "shipping",
			Surfaces: []string{"shipping", "delivery"},
			Positive: []string{"%s was fast, arrived as described", "%s came quickly and well packaged, great"},
			Negative: []string{"%s took weeks, poor experience", "%s box arrived damaged, terrible"},
			Neutral:  []string{"%s used standard post"},
		},
		{
			Name:     "compatibility",
			Surfaces: []string{"compatibility", "pairing"},
			Positive: []string{"%s is excellent, works with my iphone", "%s with every device i own, impressive"},
			Negative: []string{"%s issues with android, disappointing", "%s is unreliable, keeps disconnecting"},
			Neutral:  []string{"%s covers bluetooth five"},
		},
		{
			Name:     "design",
			Surfaces: []string{"design", "look"},
			Positive: []string{"the %s is sleek and nice", "love the %s, very modern"},
			Negative: []string{"the %s is bulky and ugly, bad", "the %s looks cheap in person"},
			Neutral:  []string{"the %s comes in three colors"},
		},
		{
			Name:     "warranty",
			Surfaces: []string{"warranty", "support"},
			Positive: []string{"%s service was great and responsive", "the %s replaced mine fast, excellent"},
			Negative: []string{"%s claims are ignored, awful", "the %s is awful, no reply for weeks"},
			Neutral:  []string{"the %s covers one year"},
		},
	},
}

// Toy is the "Toys and Games" category.
var Toy = Category{
	Name:   "Toy",
	Brands: []string{"Ravenwood", "Brickline", "Playora", "Gizmo", "Whimsy", "Puzzlecraft"},
	Nouns: []string{
		"1000-Piece Puzzle", "Building Blocks", "Board Game", "Plush Bear",
		"Remote Car", "Card Game", "Science Kit", "Wooden Train",
	},
	Aspects: []Aspect{
		{
			Name:     "quality",
			Surfaces: []string{"quality", "craftsmanship"},
			Positive: []string{"the %s is excellent, everything is well cut", "%s is impressive for the money"},
			Negative: []string{"the %s is poor, cardboard bends easily", "%s is disappointing, feels cheap"},
			Neutral:  []string{"the %s matches the brand standard"},
		},
		{
			Name:     "difficulty",
			Surfaces: []string{"difficulty", "challenge"},
			Positive: []string{"the %s is perfect, engaging without frustration", "great %s for family evenings"},
			Negative: []string{"the %s is awful, nearly impossible to finish", "%s is too high, kids gave up, bad"},
			Neutral:  []string{"the %s suits ages eight and up"},
		},
		{
			Name:     "pieces",
			Surfaces: []string{"pieces", "parts"},
			Positive: []string{"the %s interlock perfectly, sturdy", "%s are colorful and well made, love them"},
			Negative: []string{"the %s were missing on arrival, terrible", "%s are flimsy and broken"},
			Neutral:  []string{"the %s come in sealed bags"},
		},
		{
			Name:     "fun",
			Surfaces: []string{"fun", "entertainment"},
			Positive: []string{"so much %s for the whole family, amazing", "the %s factor is great, hours of play"},
			Negative: []string{"the %s wears off quickly, disappointing", "%s is limited, kids got bored, poor"},
			Neutral:  []string{"the %s works best with four players"},
		},
		{
			Name:     "education",
			Surfaces: []string{"educational", "learning"},
			Positive: []string{"very %s, great for problem solving", "the %s payoff is excellent"},
			Negative: []string{"not %s at all, poor concept", "the %s claims are weak"},
			Neutral:  []string{"the %s guide lists activities"},
		},
		{
			Name:     "durability",
			Surfaces: []string{"durability", "sturdiness"},
			Positive: []string{"%s is great, survives rough play", "the %s is solid, still like new"},
			Negative: []string{"%s is bad, snapped on day one", "the %s is poor, corners peel"},
			Neutral:  []string{"the %s depends on storage"},
		},
		{
			Name:     "box",
			Surfaces: []string{"box", "packaging"},
			Positive: []string{"the %s art is nice and the lid is sturdy", "%s is excellent, doubles as storage"},
			Negative: []string{"the %s arrived crushed, bad protection", "%s picture hides half the design, poor choice"},
			Neutral:  []string{"the %s shows the finished picture"},
		},
		{
			Name:     "instructions",
			Surfaces: []string{"instructions", "manual"},
			Positive: []string{"the %s are clear and easy, great", "%s include nice step by step photos"},
			Negative: []string{"the %s are confusing, awful translation", "%s skip steps, poor editing"},
			Neutral:  []string{"the %s come in five languages"},
		},
		{
			Name:     "price",
			Surfaces: []string{"price", "value"},
			Positive: []string{"the %s is great for this much content", "excellent %s, cheaper than the store"},
			Negative: []string{"the %s is high for so little content, bad deal", "poor %s, not worth it"},
			Neutral:  []string{"the %s is mid range"},
		},
		{
			Name:     "size",
			Surfaces: []string{"size", "dimensions"},
			Positive: []string{"the finished %s is impressive on the wall", "%s is perfect for the coffee table"},
			Negative: []string{"the %s is smaller than advertised, disappointing", "%s is awkward and bad, too big to store"},
			Neutral:  []string{"the %s is twenty by thirty inches"},
		},
		{
			Name:     "colors",
			Surfaces: []string{"colors", "artwork"},
			Positive: []string{"the %s are vivid and crisp, love it", "%s look amazing in person"},
			Negative: []string{"the %s are dull, looks cheap", "%s faded after a month, poor ink"},
			Neutral:  []string{"the %s follow the original painting"},
		},
		{
			Name:     "age",
			Surfaces: []string{"age", "audience"},
			Positive: []string{"the %s range is perfect, grows with the child", "great for any %s, grandparents loved it"},
			Negative: []string{"the %s label is wrong, too hard for kids, poor", "%s fit is poor, toddlers choke hazard"},
			Neutral:  []string{"the %s range is printed on the side"},
		},
	},
}

// Clothing is the "Clothing" category.
var Clothing = Category{
	Name:   "Clothing",
	Brands: []string{"Skyline", "Harbor", "Meadow", "Trailfit", "Urbanly", "Coastal"},
	Nouns: []string{
		"Wedge Sandal", "Running Shoe", "Rain Jacket", "Cotton Tee",
		"Denim Jeans", "Wool Sweater", "Yoga Pants", "Leather Belt",
	},
	Aspects: []Aspect{
		{
			Name:     "fit",
			Surfaces: []string{"fit", "sizing"},
			Positive: []string{"the %s is true to size, perfect", "%s is spot on, order your usual, great"},
			Negative: []string{"the %s runs small, disappointing", "%s is off, had to return twice, disappointing"},
			Neutral:  []string{"the %s chart is on the listing"},
		},
		{
			Name:     "comfort",
			Surfaces: []string{"comfort", "cushioning"},
			Positive: []string{"the %s is amazing, wore them all day", "%s is great, soft padding"},
			Negative: []string{"the %s is poor, hurts after an hour", "%s is bad, stiff and scratchy"},
			Neutral:  []string{"the %s comes from a foam insole"},
		},
		{
			Name:     "material",
			Surfaces: []string{"material", "fabric"},
			Positive: []string{"the %s feels premium and sturdy", "%s quality is excellent, thick weave"},
			Negative: []string{"the %s is thin and cheap", "%s pilled after one wash, poor"},
			Neutral:  []string{"the %s is sixty percent cotton"},
		},
		{
			Name:     "color",
			Surfaces: []string{"color", "shade"},
			Positive: []string{"the %s matches the photos, love it", "%s is rich and nice in person"},
			Negative: []string{"the %s faded quickly, disappointing", "%s is nothing like the picture, bad"},
			Neutral:  []string{"the %s comes in six options"},
		},
		{
			Name:     "style",
			Surfaces: []string{"style", "look"},
			Positive: []string{"the %s is nice, got lots of compliments", "%s is great, dressy or casual"},
			Negative: []string{"the %s is dated, looks cheap", "%s is awkward, boxy cut, poor"},
			Neutral:  []string{"the %s follows this season"},
		},
		{
			Name:     "heel",
			Surfaces: []string{"heel", "wedge"},
			Positive: []string{"the %s height is perfect for all day", "%s is comfortable and easy to walk in, great"},
			Negative: []string{"the %s wobbles, feels unreliable", "%s rubbed my skin raw, awful"},
			Neutral:  []string{"the %s measures two inches"},
		},
		{
			Name:     "sole",
			Surfaces: []string{"sole", "footbed"},
			Positive: []string{"the %s has a nice cushion, comfortable all day", "%s grip is excellent on wet floors"},
			Negative: []string{"the %s wore through in a month, poor", "%s is slippery, almost fell, bad"},
			Neutral:  []string{"the %s is molded rubber"},
		},
		{
			Name:     "straps",
			Surfaces: []string{"straps", "laces"},
			Positive: []string{"the %s are soft and adjustable, great", "%s hold snug without pinching, perfect"},
			Negative: []string{"the %s dig in, uncomfortable", "%s snapped early, flimsy threadwork"},
			Neutral:  []string{"the %s have elastic joins"},
		},
		{
			Name:     "price",
			Surfaces: []string{"price", "value"},
			Positive: []string{"the %s is excellent for this quality", "great %s, cheaper than the mall"},
			Negative: []string{"the %s is steep for such thin cloth, poor", "bad %s, not worth half"},
			Neutral:  []string{"the %s sits mid market"},
		},
		{
			Name:     "washing",
			Surfaces: []string{"washing", "care"},
			Positive: []string{"%s is easy, keeps shape, great", "survived many %s cycles, impressive"},
			Negative: []string{"shrank after one %s, terrible", "%s instructions lie, colors bled, bad"},
			Neutral:  []string{"%s calls for cold water"},
		},
		{
			Name:     "weight",
			Surfaces: []string{"weight", "lightness"},
			Positive: []string{"the %s is perfect, super lightweight", "love the %s, you forget you wear them"},
			Negative: []string{"the %s is bad, heavy and clunky", "%s drags, tiring by noon, bad"},
			Neutral:  []string{"the %s is about ten ounces"},
		},
		{
			Name:     "stitching",
			Surfaces: []string{"stitching", "seams"},
			Positive: []string{"the %s is clean and solid, well made", "%s quality is excellent, no loose threads"},
			Negative: []string{"the %s unraveled in a week, poor", "%s are crooked, looks cheap"},
			Neutral:  []string{"the %s is double reinforced"},
		},
	},
}

// Categories lists the three evaluation categories in Table 2 order.
func Categories() []Category { return []Category{Cellphone, Toy, Clothing} }

// CategoryByName returns the category with the given name, searching every
// built-in category (the evaluation trio plus the extras).
func CategoryByName(name string) (Category, bool) {
	for _, c := range AllCategories() {
		if c.Name == name {
			return c, true
		}
	}
	return Category{}, false
}
