package lexicon

import (
	"strings"
	"testing"
)

func TestCategoriesWellFormed(t *testing.T) {
	cats := Categories()
	if len(cats) != 3 {
		t.Fatalf("got %d categories", len(cats))
	}
	names := map[string]bool{}
	for _, c := range cats {
		if names[c.Name] {
			t.Errorf("duplicate category %s", c.Name)
		}
		names[c.Name] = true
		if len(c.Aspects) < 8 {
			t.Errorf("%s: only %d aspects", c.Name, len(c.Aspects))
		}
		if len(c.Brands) == 0 || len(c.Nouns) == 0 {
			t.Errorf("%s: missing brands/nouns", c.Name)
		}
		seen := map[string]bool{}
		for _, a := range c.Aspects {
			if seen[a.Name] {
				t.Errorf("%s: duplicate aspect %s", c.Name, a.Name)
			}
			seen[a.Name] = true
			if len(a.Surfaces) == 0 {
				t.Errorf("%s/%s: no surfaces", c.Name, a.Name)
			}
			if len(a.Positive) == 0 || len(a.Negative) == 0 || len(a.Neutral) == 0 {
				t.Errorf("%s/%s: missing templates", c.Name, a.Name)
			}
			for _, tmpl := range append(append(append([]string{}, a.Positive...), a.Negative...), a.Neutral...) {
				if !strings.Contains(tmpl, "%s") {
					t.Errorf("%s/%s: template %q lacks %%s", c.Name, a.Name, tmpl)
				}
			}
		}
	}
}

func TestPositiveTemplatesCarryPositiveSentiment(t *testing.T) {
	// Every positive template must contain at least one positive lexicon
	// word so the extractor can recover the polarity; negatives mirror.
	for _, c := range AllCategories() {
		for _, a := range c.Aspects {
			for _, tmpl := range a.Positive {
				if valenceOf(tmpl) <= 0 {
					t.Errorf("%s/%s positive template %q has valence %v", c.Name, a.Name, tmpl, valenceOf(tmpl))
				}
			}
			for _, tmpl := range a.Negative {
				if valenceOf(tmpl) >= 0 {
					t.Errorf("%s/%s negative template %q has valence %v", c.Name, a.Name, tmpl, valenceOf(tmpl))
				}
			}
			for _, tmpl := range a.Neutral {
				if valenceOf(tmpl) != 0 {
					t.Errorf("%s/%s neutral template %q has valence %v", c.Name, a.Name, tmpl, valenceOf(tmpl))
				}
			}
		}
	}
}

func valenceOf(text string) float64 {
	var total float64
	for _, w := range strings.Fields(strings.ToLower(strings.ReplaceAll(text, ",", " "))) {
		total += Valence(w)
	}
	return total
}

func TestSurfacesDistinctAcrossAspects(t *testing.T) {
	// A surface form appearing under two aspects would make extraction
	// ambiguous within a category.
	for _, c := range AllCategories() {
		owner := map[string]string{}
		for _, a := range c.Aspects {
			for _, s := range a.Surfaces {
				if prev, ok := owner[s]; ok && prev != a.Name {
					t.Errorf("%s: surface %q claimed by %s and %s", c.Name, s, prev, a.Name)
				}
				owner[s] = a.Name
			}
		}
	}
}

func TestSurfacesAreNotSentimentWords(t *testing.T) {
	for _, c := range AllCategories() {
		for _, a := range c.Aspects {
			for _, s := range a.Surfaces {
				if Valence(s) != 0 {
					t.Errorf("%s/%s: surface %q is also a sentiment word", c.Name, a.Name, s)
				}
			}
		}
	}
}

func TestTemplatesDoNotLeakOtherAspects(t *testing.T) {
	// A template for aspect A must not contain a surface form of another
	// aspect B of the same category, or extraction would hallucinate B.
	for _, c := range AllCategories() {
		surfaces := map[string]string{}
		for _, a := range c.Aspects {
			for _, s := range a.Surfaces {
				surfaces[s] = a.Name
			}
		}
		for _, a := range c.Aspects {
			templates := append(append(append([]string{}, a.Positive...), a.Negative...), a.Neutral...)
			for _, tmpl := range templates {
				filled := strings.ReplaceAll(tmpl, "%s", a.Surfaces[0])
				for _, tok := range strings.Fields(strings.ToLower(strings.NewReplacer(",", " ", ".", " ").Replace(filled))) {
					if owner, ok := surfaces[tok]; ok && owner != a.Name {
						t.Errorf("%s/%s template %q leaks surface %q of aspect %s",
							c.Name, a.Name, tmpl, tok, owner)
					}
				}
			}
		}
	}
}

func TestValence(t *testing.T) {
	if Valence("great") <= 0 || Valence("terrible") >= 0 || Valence("the") != 0 {
		t.Error("valence lookups wrong")
	}
}

func TestCategoryByName(t *testing.T) {
	for _, name := range []string{"Cellphone", "Toy", "Clothing"} {
		c, ok := CategoryByName(name)
		if !ok || c.Name != name {
			t.Errorf("CategoryByName(%s) = %v, %v", name, c.Name, ok)
		}
	}
	if _, ok := CategoryByName("Books"); ok {
		t.Error("unexpected category Books")
	}
}

func TestAspectNamesOrder(t *testing.T) {
	c := Cellphone
	names := c.AspectNames()
	if len(names) != len(c.Aspects) {
		t.Fatalf("len = %d", len(names))
	}
	for i, a := range c.Aspects {
		if names[i] != a.Name {
			t.Errorf("names[%d] = %s, want %s", i, names[i], a.Name)
		}
	}
}
