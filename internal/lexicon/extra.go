package lexicon

// Extra categories beyond the paper's evaluation trio (Table 2 uses
// Cellphone/Toy/Clothing; Categories() keeps returning exactly those so the
// experiment workload mirrors the paper). These are available to library
// users through CategoryByName / AllCategories for generating or annotating
// corpora in other domains.

// Electronics is a consumer-electronics category.
var Electronics = Category{
	Name:   "Electronics",
	Brands: []string{"Novatek", "Brightline", "Pulse", "Vertex", "Quanta", "Halo"},
	Nouns: []string{
		"4K Monitor", "Mechanical Keyboard", "Wireless Mouse", "Webcam",
		"Soundbar", "Router", "External Drive", "Smart Plug",
	},
	Aspects: []Aspect{
		{
			Name:     "picture",
			Surfaces: []string{"picture", "image"},
			Positive: []string{"the %s is crisp and vivid, excellent", "%s quality is amazing out of the box"},
			Negative: []string{"the %s is washed out, disappointing", "%s ghosting is terrible in motion"},
			Neutral:  []string{"the %s covers the srgb gamut"},
		},
		{
			Name:     "setup",
			Surfaces: []string{"setup", "installation"},
			Positive: []string{"%s took five minutes, great instructions", "the %s was easy and fast"},
			Negative: []string{"%s fought me for hours, awful experience", "the %s kept failing, poor documentation"},
			Neutral:  []string{"the %s needs the vendor app"},
		},
		{
			Name:     "connectivity",
			Surfaces: []string{"connectivity", "connection"},
			Positive: []string{"%s is reliable across the whole house", "the %s stays solid even through walls"},
			Negative: []string{"%s drops hourly, unreliable", "the %s is weak beyond one room, bad"},
			Neutral:  []string{"%s includes two usb ports"},
		},
		{
			Name:     "noise",
			Surfaces: []string{"noise", "fan"},
			Positive: []string{"the %s is whisper quiet, nice", "%s level is low even under load, impressive"},
			Negative: []string{"the %s whines constantly, noisy", "%s is loud enough to hear over music, terrible"},
			Neutral:  []string{"the %s spins up under load"},
		},
		{
			Name:     "power",
			Surfaces: []string{"power", "consumption"},
			Positive: []string{"%s draw is tiny, great for always on", "the %s sips electricity, excellent"},
			Negative: []string{"%s usage is high at idle, poor design", "the %s brick runs hot, bad"},
			Neutral:  []string{"%s comes from a barrel connector"},
		},
		{
			Name:     "build",
			Surfaces: []string{"build", "housing"},
			Positive: []string{"the %s feels premium and sturdy", "%s quality is solid metal, excellent"},
			Negative: []string{"the %s creaks, feels cheap", "%s plastic flexes, flimsy"},
			Neutral:  []string{"the %s is matte black"},
		},
		{
			Name:     "software",
			Surfaces: []string{"software", "firmware"},
			Positive: []string{"the %s is clean and reliable", "%s updates arrive monthly, great cadence"},
			Negative: []string{"the %s is buggy and slow", "%s resets settings after updates, awful"},
			Neutral:  []string{"the %s exposes a web console"},
		},
		{
			Name:     "price",
			Surfaces: []string{"price", "value"},
			Positive: []string{"the %s is great for this feature set", "excellent %s against the big names"},
			Negative: []string{"the %s is steep for what it does, poor", "bad %s, half the cost elsewhere"},
			Neutral:  []string{"the %s tracks the market"},
		},
		{
			Name:     "latency",
			Surfaces: []string{"latency", "lag"},
			Positive: []string{"%s is imperceptible, great for gaming", "the %s is low and consistent, impressive"},
			Negative: []string{"%s spikes constantly, bad for calls", "the %s makes typing feel slow"},
			Neutral:  []string{"%s sits near eight milliseconds"},
		},
		{
			Name:     "warranty",
			Surfaces: []string{"warranty", "support"},
			Positive: []string{"%s service replaced mine in a week, great", "the %s team is responsive and reliable"},
			Negative: []string{"%s claims go unanswered, awful", "the %s expired conveniently early, poor"},
			Neutral:  []string{"the %s runs two years"},
		},
	},
}

// Kitchen is a home-and-kitchen category.
var Kitchen = Category{
	Name:   "Kitchen",
	Brands: []string{"Hearth", "Copperleaf", "Savor", "Brisk", "Yumi", "Granary"},
	Nouns: []string{
		"Chef Knife", "Cast Iron Skillet", "French Press", "Stand Mixer",
		"Cutting Board", "Food Container", "Kettle", "Spice Grinder",
	},
	Aspects: []Aspect{
		{
			Name:     "sharpness",
			Surfaces: []string{"sharpness", "edge"},
			Positive: []string{"the %s is excellent out of the box", "%s holds through months of use, impressive"},
			Negative: []string{"the %s dulled in a week, poor steel", "%s chips on carrots, terrible"},
			Neutral:  []string{"the %s takes a fifteen degree bevel"},
		},
		{
			Name:     "handle",
			Surfaces: []string{"handle", "grip"},
			Positive: []string{"the %s is comfortable for long prep", "%s balance is perfect, great feel"},
			Negative: []string{"the %s is slippery when wet, bad", "%s seam digs into the palm, uncomfortable"},
			Neutral:  []string{"the %s is riveted walnut"},
		},
		{
			Name:     "cleaning",
			Surfaces: []string{"cleaning", "washing"},
			Positive: []string{"%s is quick, everything wipes off, great", "%s is easy, dishwasher safe and reliable"},
			Negative: []string{"%s is a chore, food sticks, poor coating", "%s instructions lie, it stains, bad"},
			Neutral:  []string{"%s calls for hand drying"},
		},
		{
			Name:     "capacity",
			Surfaces: []string{"capacity", "volume"},
			Positive: []string{"the %s is perfect for a family of four", "%s is generous, great for batch cooking"},
			Negative: []string{"the %s is smaller than advertised, disappointing", "%s barely fits two portions, bad"},
			Neutral:  []string{"the %s is three quarts"},
		},
		{
			Name:     "heat",
			Surfaces: []string{"heat", "heating"},
			Positive: []string{"%s distribution is even, excellent sear", "the %s comes up fast and steady, great"},
			Negative: []string{"%s spots burn the center, poor base", "the %s takes forever, weak element"},
			Neutral:  []string{"%s works on induction"},
		},
		{
			Name:     "durability",
			Surfaces: []string{"durability", "wear"},
			Positive: []string{"%s is great, years of daily use", "the %s shrugs off drops, solid"},
			Negative: []string{"%s is poor, body cracked early", "the %s rusted in a month, cheap"},
			Neutral:  []string{"the %s depends on seasoning"},
		},
		{
			Name:     "price",
			Surfaces: []string{"price", "value"},
			Positive: []string{"the %s is excellent for this quality", "great %s, outlasts pricier brands"},
			Negative: []string{"the %s is high for thin metal, poor", "bad %s, gimmick tax"},
			Neutral:  []string{"the %s sits mid shelf"},
		},
		{
			Name:     "design",
			Surfaces: []string{"design", "look"},
			Positive: []string{"the %s is nice, looks great on the counter", "love the %s, clean lines"},
			Negative: []string{"the %s is clunky, looks cheap", "%s traps crumbs in crevices, bad"},
			Neutral:  []string{"the %s comes in four colors"},
		},
		{
			Name:     "smell",
			Surfaces: []string{"smell", "odor"},
			Positive: []string{"no %s at all, great materials", "the %s faded after one wash, perfect"},
			Negative: []string{"the plastic %s never leaves, awful", "%s transfers to food, terrible"},
			Neutral:  []string{"a faint %s ships with the box"},
		},
		{
			Name:     "lid",
			Surfaces: []string{"lid", "seal"},
			Positive: []string{"the %s locks tight, great for transport", "%s is reliable, zero leaks"},
			Negative: []string{"the %s warps in the dishwasher, poor fit", "%s leaks in the bag, bad"},
			Neutral:  []string{"the %s has a steam vent"},
		},
	},
}

// AllCategories returns every built-in category: the evaluation trio first
// (in Table 2 order), then the extra library categories.
func AllCategories() []Category {
	return append(Categories(), Electronics, Kitchen)
}
