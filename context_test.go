package comparesets_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"comparesets"
)

// heavyInstance builds an inline instance large enough that selection takes
// well over a millisecond: 80 items × 200 reviews with distinct mention
// patterns, so the regression has thousands of distinct columns to rank.
func heavyInstance() *comparesets.Instance {
	aspects := make([]string, 20)
	for i := range aspects {
		aspects[i] = fmt.Sprintf("aspect%02d", i)
	}
	items := make([]*comparesets.Item, 80)
	for i := range items {
		item := &comparesets.Item{ID: fmt.Sprintf("p%02d", i), Title: fmt.Sprintf("Product %d", i)}
		for j := 0; j < 200; j++ {
			pol := comparesets.Positive
			if (i+j)%2 == 1 {
				pol = comparesets.Negative
			}
			item.Reviews = append(item.Reviews, &comparesets.Review{
				ID:     fmt.Sprintf("p%02d-r%03d", i, j),
				Rating: 1 + (i+j)%5,
				Mentions: []comparesets.Mention{
					{Aspect: j % 20, Polarity: pol, Score: 1},
					{Aspect: (j / 20) % 20, Polarity: comparesets.Positive, Score: 1},
					{Aspect: (i + j) % 20, Polarity: comparesets.Negative, Score: 1},
				},
			})
		}
		items[i] = item
	}
	return &comparesets.Instance{
		Aspects: comparesets.NewVocabulary(aspects),
		Items:   items,
	}
}

func TestSelectContextExpiredFailsFast(t *testing.T) {
	inst := heavyInstance()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for name, run := range map[string]func() (*comparesets.Selection, error){
		"SelectContext": func() (*comparesets.Selection, error) {
			return comparesets.SelectContext(ctx, inst, comparesets.DefaultConfig(3))
		},
		"SelectSynchronizedContext": func() (*comparesets.Selection, error) {
			return comparesets.SelectSynchronizedContext(ctx, inst, comparesets.DefaultConfig(3))
		},
	} {
		start := time.Now()
		sel, err := run()
		elapsed := time.Since(start)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v (want DeadlineExceeded)", name, err)
		}
		if sel != nil {
			t.Errorf("%s: non-nil selection on expired context", name)
		}
		if elapsed > 50*time.Millisecond {
			t.Errorf("%s: took %v (want < 50ms)", name, elapsed)
		}
	}
}

func TestSelectContextCancelMidSelect(t *testing.T) {
	inst := heavyInstance()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := comparesets.SelectSynchronizedContext(ctx, inst, comparesets.DefaultConfig(5))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (want Canceled); run took %v", err, elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation honored only after %v", elapsed)
	}
	// The abandoned solve must not corrupt shared state: the same instance
	// still selects correctly afterwards.
	sel, err := comparesets.SelectSynchronized(inst, comparesets.DefaultConfig(5))
	if err != nil || len(sel.Indices) != inst.NumItems() {
		t.Fatalf("post-cancel select: sel=%v err=%v", sel, err)
	}
}

func TestSelectBatchContextCancelNoLeak(t *testing.T) {
	corpus, err := comparesets.GenerateCorpus("Cellphone", 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	var insts []*comparesets.Instance
	for _, id := range comparesets.TargetProducts(corpus) {
		inst, err := corpus.NewInstance(id, 6)
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, inst)
	}
	if len(insts) < 4 {
		t.Fatalf("only %d instances", len(insts))
	}
	sel, _ := comparesets.SelectorByName("CompaReSetS+")
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: workers must drain without doing work
	if _, err := comparesets.SelectBatchContext(ctx, insts, sel, comparesets.DefaultConfig(3), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (want Canceled)", err)
	}

	// All worker goroutines must have exited; poll briefly to let the
	// scheduler retire them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestContextFreeAndContextFormsAgree(t *testing.T) {
	inst := buildInstance(t)
	cfg := comparesets.DefaultConfig(3)
	ctx := context.Background()

	plain, err := comparesets.Select(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plainCtx, err := comparesets.SelectContext(ctx, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, plainCtx) {
		t.Error("Select and SelectContext disagree on an uncancelled run")
	}

	sync, err := comparesets.SelectSynchronized(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	syncCtx, err := comparesets.SelectSynchronizedContext(ctx, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sync, syncCtx) {
		t.Error("SelectSynchronized and SelectSynchronizedContext disagree on an uncancelled run")
	}
}

func TestShortlistTypedMethods(t *testing.T) {
	cases := []struct {
		method comparesets.ShortlistMethod
		name   string
	}{
		{comparesets.ShortlistExact, "exact"},
		{comparesets.ShortlistGreedy, "greedy"},
		{comparesets.ShortlistTopK, "topk"},
		{comparesets.ShortlistRandom, "random"},
	}
	for _, c := range cases {
		if got := c.method.String(); got != c.name {
			t.Errorf("%v.String() = %q", c.method, got)
		}
		parsed, err := comparesets.ParseShortlistMethod(c.name)
		if err != nil || parsed != c.method {
			t.Errorf("ParseShortlistMethod(%q) = %v, %v", c.name, parsed, err)
		}
	}
	if m, err := comparesets.ParseShortlistMethod("ilp"); err != nil || m != comparesets.ShortlistExact {
		t.Errorf(`ParseShortlistMethod("ilp") = %v, %v (want alias for exact)`, m, err)
	}
	if _, err := comparesets.ParseShortlistMethod("bogus"); err == nil {
		t.Error("bogus method parsed")
	}

	inst := buildInstance(t)
	cfg := comparesets.DefaultConfig(3)
	sel, err := comparesets.Select(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Parsing a v1 method name and solving with the typed form must agree
	// with solving under the typed constant directly.
	for _, c := range cases {
		parsed, perr := comparesets.ParseShortlistMethod(c.name)
		if perr != nil {
			t.Fatalf("%s: %v", c.name, perr)
		}
		bridged, err1 := comparesets.ShortlistWith(inst, sel, cfg, 3, comparesets.ShortlistOptions{Method: parsed})
		typed, err2 := comparesets.ShortlistWith(inst, sel, cfg, 3, comparesets.ShortlistOptions{Method: c.method})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: errs %v / %v", c.name, err1, err2)
		}
		if !reflect.DeepEqual(bridged, typed) {
			t.Errorf("%s: parsed form %+v != typed form %+v", c.name, bridged, typed)
		}
	}
	if _, err := comparesets.ShortlistWith(inst, sel, cfg, 3, comparesets.ShortlistOptions{Method: comparesets.ShortlistMethod(99)}); err == nil {
		t.Error("invalid typed method accepted")
	}
}

func TestShortlistExactBudgetReturnsBestSoFar(t *testing.T) {
	inst := buildInstance(t)
	cfg := comparesets.DefaultConfig(3)
	sel, err := comparesets.Select(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A one-nanosecond budget expires before the branch-and-bound starts:
	// the solver must still return the (feasible, greedy-seeded) incumbent
	// flagged non-optimal — never an empty result.
	short, err := comparesets.ShortlistWith(inst, sel, cfg, 3, comparesets.ShortlistOptions{
		Method: comparesets.ShortlistExact,
		Budget: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if short.Optimal {
		t.Error("1ns budget reported a proven optimum")
	}
	if len(short.Members) != 3 || short.Members[0] != 0 {
		t.Errorf("best-so-far members = %v (want 3 members incl. target)", short.Members)
	}

	// An expired context behaves like an exhausted budget.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	short, err = comparesets.ShortlistContext(ctx, inst, sel, cfg, 3, comparesets.ShortlistOptions{Method: comparesets.ShortlistExact, Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if short.Optimal || len(short.Members) != 3 {
		t.Errorf("expired ctx: %+v", short)
	}

	// A negative (unlimited) budget proves optimality on this tiny graph.
	short, err = comparesets.ShortlistWith(inst, sel, cfg, 3, comparesets.ShortlistOptions{Method: comparesets.ShortlistExact, Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !short.Optimal {
		t.Error("unlimited budget failed to prove optimality on a tiny graph")
	}
}
