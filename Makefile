# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race cover bench bench-json experiments examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

# Record the hot-path benchmarks (core, regress, linalg) into
# BENCH_core.json; commit the diff alongside performance changes.
bench-json:
	go run ./cmd/bench -out BENCH_core.json

# Regenerate every table and figure (plus CSVs and SVG charts) into results/.
experiments:
	go run ./cmd/experiments -all -size medium -budget 2s -csv results -svg results

examples:
	go run ./examples/quickstart
	go run ./examples/cameras
	go run ./examples/shortlist
	go run ./examples/opinionschemes
	go run ./examples/explanations
	go run ./examples/batch

clean:
	rm -f test_output.txt bench_output.txt
