# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race cover bench bench-json experiments examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

# Record the hot-path benchmarks into versioned JSON; commit the diff
# alongside performance changes. BENCH_core.json covers the selection
# pipeline (core, regress, linalg, store, service); BENCH_service.json
# isolates the serving path (cold vs warm cache vs coalesced).
bench-json:
	go run ./cmd/bench -out BENCH_core.json
	go run ./cmd/bench -out BENCH_service.json ./internal/service/

# Regenerate every table and figure (plus CSVs and SVG charts) into results/.
experiments:
	go run ./cmd/experiments -all -size medium -budget 2s -csv results -svg results

examples:
	go run ./examples/quickstart
	go run ./examples/cameras
	go run ./examples/shortlist
	go run ./examples/opinionschemes
	go run ./examples/explanations
	go run ./examples/batch

clean:
	rm -f test_output.txt bench_output.txt
