# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race cover bench bench-json bce-check chaos chaos-cluster fuzz loadgen loadgen-router experiments examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

# Chaos run: the fault-injection and resilience suites under the race
# detector with injection enabled and a fresh random seed. The seed is
# printed up front and again on failure — rerun with
# FAULTINJECT_SEED=<seed> to reproduce a failing draw sequence exactly.
chaos:
	@seed=$${FAULTINJECT_SEED:-$$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')}; \
	echo "chaos: FAULTINJECT_SEED=$$seed"; \
	FAULTINJECT=1 FAULTINJECT_SEED=$$seed go test -race -count=1 \
		-run 'Fault|Chaos|Panic|Stale|Resilience|Recovery|Retries' \
		./internal/faultinject/... ./internal/store/... ./internal/core/... \
		./internal/featstore/... ./internal/servecache/... ./internal/service/... \
	|| { echo "chaos FAILED — reproduce with: FAULTINJECT_SEED=$$seed make chaos"; exit 1; }

# Cross-process chaos drill: 3 real workers + the router, probabilistic
# router.forward faults, and a kill -9 of one worker mid-load; fails unless
# client availability stays >= 99%. Prints FAULTINJECT_SEED for replay.
# The in-process equivalent (plus mutation-durability and byte-parity
# assertions) runs in every `go test ./internal/cluster/` as
# TestClusterSurvivesReplicaKillMidLoad.
chaos-cluster:
	sh scripts/chaos_cluster.sh

# Fuzz the store's crash-recovery scan, the mutation-log append path, and
# the hand-rolled JSON encoders' byte parity with encoding/json (bounded;
# raise -fuzztime locally).
fuzz:
	go test -run '^$$' -fuzz FuzzStoreScan -fuzztime 30s ./internal/store/
	go test -run '^$$' -fuzz FuzzCSLGAppend -fuzztime 30s ./internal/store/
	go test -run '^$$' -fuzz FuzzEncodeParity -fuzztime 30s ./internal/service/
	go test -run '^$$' -fuzz FuzzReviewMarshalAppend -fuzztime 30s ./internal/model/

# Open-loop load harness: zipfian target popularity, tunable read/write mix,
# in-process server over the synthetic corpora. Records client-side
# p50/p90/p99 plus the /metrics counter deltas (cache hit rate, shed, page
# cache, encoder bytes) into BENCH_load.json; commit the diff alongside
# serving-edge changes. `-baseline BENCH_load.json` turns it into the perf
# gate CI runs.
loadgen:
	go run ./cmd/loadgen -rates 50,100,200 -duration 3s -write-ratio 0.05 -out BENCH_load.json

# Router edge-cache comparison: 3 in-process replicas behind the routing
# tier, a warm/cold probe of the edge fast path (cold proxied solve vs warm
# byte replay, with the edge hit ratio), then each rate staged through the
# router and directly against the replicas. Records BENCH_router.json;
# `-baseline BENCH_router.json` gates routed p99s by (mode, rate) and the
# warm-hit p99 — the regression gate CI runs on the edge fast path.
loadgen-router:
	go run ./cmd/loadgen -cluster 3 -rates 50,100 -duration 3s -write-ratio 0.05 -m 8 -out BENCH_router.json

# Record the hot-path benchmarks into versioned JSON; commit the diff
# alongside performance changes. BENCH_core.json covers the selection
# pipeline (core, regress, linalg, store, service); BENCH_service.json
# isolates the serving path (cold vs warm cache vs coalesced);
# BENCH_simgraph.json covers the shortlist solvers (Exact/Greedy/HkS at
# n∈{16,32,64}, k∈{5,10} — 10x because HkS n=64 runs 64 exact solves/op);
# BENCH_batch.json isolates the batched executor (group sizes 1/4/16 and the
# 8-concurrent-distinct workload, batched vs unbatched); BENCH_mutate.json
# compares the incremental write path against the old whole-epoch flush
# (append-1-review vs AddCorpus+precompute at n∈{64,256}).
# BENCH_load.json (via the loadgen target) adds the end-to-end serving-edge
# curves: client-observed p50/p99 and accelerator counters under zipfian
# open-loop load at three arrival rates; BENCH_router.json (via
# loadgen-router) adds the routed-vs-direct comparison and the edge cache's
# warm/cold split.
bench-json: loadgen loadgen-router
	go run ./cmd/bench -out BENCH_core.json
	go run ./cmd/bench -out BENCH_service.json ./internal/service/
	go run ./cmd/bench -out BENCH_simgraph.json -benchtime 10x ./internal/simgraph/
	go run ./cmd/bench -out BENCH_batch.json -bench 'SelectBatch|SelectConcurrent' ./internal/service/
	go run ./cmd/bench -out BENCH_mutate.json -bench 'Mutate|BuilderUpdate|BuildFull' ./internal/service/ ./internal/simgraph/

# Prove the compute kernels stay free of bounds checks: build the linalg
# package with the BCE diagnostic and fail if the compiler reports a bounds
# check inside kernels.go or kernels32.go. GOARCH is pinned because BCE
# decisions are architecture-dependent.
bce-check:
	@out=$$(GOARCH=amd64 go build -gcflags='comparesets/internal/linalg=-d=ssa/check_bce/debug=1' ./internal/linalg/ 2>&1 | grep -E 'kernels(32)?\.go' || true); \
	if [ -n "$$out" ]; then \
		echo "bounds checks found in kernels:"; echo "$$out"; exit 1; \
	else echo "bce-check: kernels are bounds-check free"; fi

# Regenerate every table and figure (plus CSVs and SVG charts) into results/.
experiments:
	go run ./cmd/experiments -all -size medium -budget 2s -csv results -svg results

examples:
	go run ./examples/quickstart
	go run ./examples/cameras
	go run ./examples/shortlist
	go run ./examples/opinionschemes
	go run ./examples/explanations
	go run ./examples/batch

clean:
	rm -f test_output.txt bench_output.txt
