// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact; see DESIGN.md's per-experiment index), plus
// micro-benchmarks of the core algorithms. The workload is built once per
// benchmark outside the timer; the selection cache is cleared between
// iterations so each iteration measures real work.
package comparesets_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"comparesets"
	"comparesets/internal/core"
	"comparesets/internal/experiments"
	"comparesets/internal/rouge"
	"comparesets/internal/simgraph"
)

var (
	benchOnce sync.Once
	benchWL   *experiments.Workload
	benchErr  error
)

func benchWorkload(b *testing.B) *experiments.Workload {
	b.Helper()
	benchOnce.Do(func() {
		benchWL, benchErr = experiments.NewWorkload(42, experiments.Small, 6)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchWL
}

// BenchmarkTable2DatasetStats regenerates Table 2.
func BenchmarkTable2DatasetStats(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(w)
		if len(res.Rows) != 3 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkTable3Alignment regenerates Table 3 (m = 3 column block).
func BenchmarkTable3Alignment(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ClearCache()
		if _, err := experiments.Table3(w, []int{3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4OpinionSchemes regenerates Table 4.
func BenchmarkTable4OpinionSchemes(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ClearCache()
		if _, err := experiments.Table4(w, 0, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5HkSQuality regenerates Table 5 (k = 3).
func BenchmarkTable5HkSQuality(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ClearCache()
		if _, err := experiments.Table5(w, []int{3}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6CoreList regenerates Table 6 (k = 3).
func BenchmarkTable6CoreList(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ClearCache()
		if _, err := experiments.Table6(w, []int{3}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7UserStudy regenerates Table 7.
func BenchmarkTable7UserStudy(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ClearCache()
		if _, err := experiments.Table7(w, 3, 5, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5aLambdaSweep regenerates Figure 5a.
func BenchmarkFigure5aLambdaSweep(b *testing.B) {
	w := benchWorkload(b)
	lambdas := []float64{0.01, 0.1, 1, 10, 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ClearCache()
		if _, err := experiments.Figure5a(w, lambdas, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5bMuSweep regenerates Figure 5b.
func BenchmarkFigure5bMuSweep(b *testing.B) {
	w := benchWorkload(b)
	mus := []float64{0.01, 0.1, 1, 10, 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ClearCache()
		if _, err := experiments.Figure5b(w, mus, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6GapVsReviews regenerates Figure 6 (Cellphone).
func BenchmarkFigure6GapVsReviews(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ClearCache()
		if _, err := experiments.Figure6(w, 0, 3, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Runtime regenerates a reduced Figure 7 point grid.
func BenchmarkFigure7Runtime(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(w, 0, []int{5, 10}, []int{3}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11InfoLoss regenerates Figure 11.
func BenchmarkFigure11InfoLoss(b *testing.B) {
	w := benchWorkload(b)
	ms := []int{1, 3, 5, 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ClearCache()
		if _, err := experiments.Figure11(w, 0, ms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCaseStudies regenerates the Figures 8-10 case studies.
func BenchmarkCaseStudies(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ClearCache()
		if _, err := experiments.CaseStudies(w, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableExtended regenerates the beyond-paper extended comparison.
func BenchmarkTableExtended(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ClearCache()
		if _, err := experiments.TableExtended(w, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHkSStress regenerates a reduced HkS budget-stress grid.
func BenchmarkAblationHkSStress(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.HkSStress(42, []int{10, 16}, 6, 3, 50*time.Millisecond)
	}
}

// BenchmarkTuning regenerates the §4.1.4 hyperparameter procedure over a
// reduced candidate set.
func BenchmarkTuning(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ClearCache()
		if _, err := experiments.Tune(w, []float64{0.1, 1}, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the core algorithms ---

func benchInstance(b *testing.B) *comparesets.Instance {
	b.Helper()
	corpus, err := comparesets.GenerateCorpus("Cellphone", 40, 7)
	if err != nil {
		b.Fatal(err)
	}
	targets := comparesets.TargetProducts(corpus)
	inst, err := corpus.NewInstance(targets[0], 8)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

func benchSelector(b *testing.B, sel comparesets.Selector, m int) {
	inst := benchInstance(b)
	cfg := comparesets.DefaultConfig(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(inst, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectCompaReSetS measures Problem 1 on one instance (m = 5).
func BenchmarkSelectCompaReSetS(b *testing.B) { benchSelector(b, core.CompaReSetS{}, 5) }

// BenchmarkSelectCompaReSetSPlus measures Problem 2 on one instance (m = 5).
func BenchmarkSelectCompaReSetSPlus(b *testing.B) { benchSelector(b, core.CompaReSetSPlus{}, 5) }

// BenchmarkSelectCRS measures the single-item CRS baseline (m = 5).
func BenchmarkSelectCRS(b *testing.B) { benchSelector(b, core.CRS{}, 5) }

// BenchmarkSelectGreedy measures the greedy baseline (m = 5).
func BenchmarkSelectGreedy(b *testing.B) { benchSelector(b, core.Greedy{}, 5) }

func benchGraph(n int, seed int64) *simgraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := simgraph.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.SetWeight(i, j, rng.Float64()*10)
		}
	}
	return g
}

// BenchmarkShortlistExact measures the branch-and-bound solver (n=25, k=10).
func BenchmarkShortlistExact(b *testing.B) {
	g := benchGraph(25, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := (simgraph.Exact{}).Solve(g, 10)
		if !res.Optimal {
			b.Fatal("not optimal")
		}
	}
}

// BenchmarkShortlistGreedy measures Algorithm 2 (n=25, k=10).
func BenchmarkShortlistGreedy(b *testing.B) {
	g := benchGraph(25, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(simgraph.Greedy{}).Solve(g, 10)
	}
}

// BenchmarkRougeCompare measures one ROUGE evaluation on review-length text.
func BenchmarkRougeCompare(b *testing.B) {
	a := "bought this last month. the battery lasts all day, great endurance. the screen is crisp and bright. shipping was fast, arrived as described."
	c := "the charge lasts all day, great endurance. the display is blurry at an angle. the price is great for what you get."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rouge.Compare(a, c)
	}
}
